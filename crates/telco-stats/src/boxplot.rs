//! Boxplot statistics (Tukey's schematic plot), as used throughout the
//! paper's Figs. 11, 12 and 18.

use serde::{Deserialize, Serialize};

use crate::desc::{mean, percentile_sorted};

/// The quantities a boxplot renders: quartiles, whiskers (1.5 × IQR rule)
/// and the outliers beyond them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Arithmetic mean (the paper overlays means on several boxplots).
    pub mean: f64,
    /// Lowest observation within `q1 - 1.5 * IQR`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5 * IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

impl BoxplotStats {
    /// Compute boxplot statistics. Returns `None` on an empty sample.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = percentile_sorted(&sorted, 25.0);
        let q3 = percentile_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .expect("at least the median is inside the fences");
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .expect("at least the median is inside the fences");
        let outliers = sorted.iter().copied().filter(|&x| x < lo_fence || x > hi_fence).collect();
        Some(BoxplotStats {
            q1,
            median: percentile_sorted(&sorted, 50.0),
            q3,
            mean: mean(xs).expect("nonempty"),
            whisker_lo,
            whisker_hi,
            outliers,
            n: xs.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Fraction of observations flagged as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        self.outliers.len() as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_no_outliers() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxplotStats::of(&xs).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        xs.push(100.0);
        let b = BoxplotStats::of(&xs).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi <= 9.0 + 1e-12);
        assert!((b.outlier_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn boxplot_constant_sample() {
        let b = BoxplotStats::of(&[5.0; 4]).unwrap();
        assert_eq!(b.q1, 5.0);
        assert_eq!(b.q3, 5.0);
        assert_eq!(b.whisker_lo, 5.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(BoxplotStats::of(&[]).is_none());
    }
}
