//! Minimal dense linear algebra for regression: a row-major matrix type,
//! Cholesky factorization, and triangular solves.
//!
//! The regression design matrices here are tall and skinny (millions of
//! rows, ~a dozen columns), so we accumulate the normal equations
//! `XᵀX β = Xᵀy` streaming over rows and solve the small symmetric
//! positive-definite system by Cholesky.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    // Relative tolerance: exact-arithmetic zero pivots round
                    // to tiny positive values for collinear integer designs.
                    if sum <= 1e-10 * self[(i, i)].abs().max(f64::MIN_POSITIVE) {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        Some(l.cholesky_solve(b))
    }

    /// Given a lower-triangular Cholesky factor `L`, solve `L Lᵀ x = b`.
    fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n, "cholesky_solve dimension mismatch");
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Inverse of a symmetric positive-definite matrix via Cholesky,
    /// column by column. `None` if not positive definite.
    pub fn inverse_spd(&self) -> Option<Matrix> {
        let n = self.rows;
        let l = self.cholesky()?;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = l.cholesky_solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Some(inv)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// Streaming accumulator for the normal equations of least squares.
///
/// Feed rows `(x, y)` one at a time (optionally weighted); then solve for
/// the coefficient vector without ever materializing the design matrix.
#[derive(Debug, Clone)]
pub struct NormalEquations {
    /// `XᵀX` (symmetric, stored fully).
    pub xtx: Matrix,
    /// `Xᵀy`.
    pub xty: Vec<f64>,
    /// `Σ w y²` (for residual computations).
    pub yty: f64,
    /// Total weight (`n` for unweighted problems).
    pub weight: f64,
    /// Number of rows fed.
    pub n: usize,
}

impl NormalEquations {
    /// Accumulator for a `p`-column design.
    pub fn new(p: usize) -> Self {
        NormalEquations { xtx: Matrix::zeros(p, p), xty: vec![0.0; p], yty: 0.0, weight: 0.0, n: 0 }
    }

    /// Number of columns.
    pub fn p(&self) -> usize {
        self.xty.len()
    }

    /// Add a row with unit weight.
    pub fn add(&mut self, x: &[f64], y: f64) {
        self.add_weighted(x, y, 1.0);
    }

    /// Add a row with weight `w` (used by IRLS for quantile regression).
    pub fn add_weighted(&mut self, x: &[f64], y: f64, w: f64) {
        let p = self.p();
        assert_eq!(x.len(), p, "row length mismatch");
        for (i, &xi) in x.iter().enumerate() {
            let wxi = w * xi;
            for (j, &xj) in x.iter().enumerate().skip(i) {
                self.xtx[(i, j)] += wxi * xj;
            }
            self.xty[i] += wxi * y;
        }
        self.yty += w * y * y;
        self.weight += w;
        self.n += 1;
    }

    /// Solve for the coefficients, mirroring the upper triangle first.
    /// Returns `None` when `XᵀX` is singular (collinear design).
    pub fn solve(&self) -> Option<Vec<f64>> {
        let p = self.p();
        let mut a = self.xtx.clone();
        for i in 0..p {
            for j in 0..i {
                a[(i, j)] = a[(j, i)];
            }
        }
        a.solve_spd(&self.xty)
    }

    /// `(XᵀX)⁻¹` for coefficient covariance. `None` when singular.
    pub fn xtx_inverse(&self) -> Option<Matrix> {
        let p = self.p();
        let mut a = self.xtx.clone();
        for i in 0..p {
            for j in 0..i {
                a[(i, j)] = a[(j, i)];
            }
        }
        a.inverse_spd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        // L * L^T == A
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = a.solve_spd(&[10.0, 8.0]).unwrap();
        // 4x + 2y = 10; 2x + 3y = 8 => x = 1.75, y = 1.5
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_spd_identity() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let inv = a.inverse_spd().unwrap();
        for i in 0..2 {
            let mut row = [0.0; 2];
            for j in 0..2 {
                for k in 0..2 {
                    row[j] += a[(i, k)] * inv[(k, j)];
                }
            }
            assert!((row[i] - 1.0).abs() < 1e-12);
            assert!((row[1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_equations_recover_line() {
        let mut ne = NormalEquations::new(2);
        for i in 0..50 {
            let x = i as f64;
            ne.add(&[1.0, x], 3.0 + 2.0 * x);
        }
        let beta = ne.solve().unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] - 2.0).abs() < 1e-10);
        assert_eq!(ne.n, 50);
    }

    #[test]
    fn normal_equations_detect_collinearity() {
        let mut ne = NormalEquations::new(2);
        for i in 0..10 {
            let x = i as f64;
            ne.add(&[x, 2.0 * x], x); // second column = 2 * first
        }
        assert!(ne.solve().is_none());
    }

    #[test]
    fn mul_vec_basic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn identity_is_identity() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }
}
