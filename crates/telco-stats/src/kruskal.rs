//! The Kruskal–Wallis rank test, used by the paper (§6.3) as a
//! distribution-free cross-check of the ANOVA conclusion that the HO type
//! drives HOF rates.

use serde::{Deserialize, Serialize};

use crate::corr::midranks;
use crate::special::chi2_sf;

/// Result of a Kruskal–Wallis test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KruskalResult {
    /// The H statistic (tie-corrected).
    pub h_statistic: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: f64,
    /// Upper-tail p-value from the χ² approximation.
    pub p_value: f64,
    /// Per-group mean ranks.
    pub mean_ranks: Vec<f64>,
    /// Per-group sizes.
    pub group_sizes: Vec<usize>,
}

/// Errors from the Kruskal–Wallis test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KruskalError {
    /// Fewer than two groups were supplied.
    TooFewGroups,
    /// A group was empty.
    EmptyGroup,
    /// All observations are tied; the statistic is undefined.
    AllTied,
}

impl std::fmt::Display for KruskalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KruskalError::TooFewGroups => write!(f, "Kruskal-Wallis needs at least two groups"),
            KruskalError::EmptyGroup => write!(f, "Kruskal-Wallis groups must be nonempty"),
            KruskalError::AllTied => write!(f, "all observations tied; H undefined"),
        }
    }
}

impl std::error::Error for KruskalError {}

/// Kruskal–Wallis H test across `groups`, with the standard tie correction
/// `H' = H / (1 − Σ(t³−t) / (n³−n))`.
pub fn kruskal_wallis(groups: &[&[f64]]) -> Result<KruskalResult, KruskalError> {
    if groups.len() < 2 {
        return Err(KruskalError::TooFewGroups);
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(KruskalError::EmptyGroup);
    }
    let k = groups.len();
    let n: usize = groups.iter().map(|g| g.len()).sum();

    // Pool, rank, and split back.
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let ranks = midranks(&pooled);

    let mut mean_ranks = Vec::with_capacity(k);
    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let ni = g.len();
        let rsum: f64 = ranks[offset..offset + ni].iter().sum();
        let mean = rsum / ni as f64;
        mean_ranks.push(mean);
        h += rsum * rsum / ni as f64;
        offset += ni;
    }
    let nf = n as f64;
    let mut h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);

    // Tie correction: count tie groups in the pooled sample.
    let mut sorted = pooled.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Kruskal-Wallis input"));
    let mut tie_sum = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_sum += t * t * t - t;
        i = j + 1;
    }
    let correction = 1.0 - tie_sum / (nf * nf * nf - nf);
    if correction <= 0.0 {
        return Err(KruskalError::AllTied);
    }
    h /= correction;

    let df = (k - 1) as f64;
    Ok(KruskalResult {
        h_statistic: h,
        df,
        p_value: chi2_sf(h, df),
        mean_ranks,
        group_sizes: groups.iter().map(|g| g.len()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_shifted_groups() {
        let a: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..40).map(|i| 100.0 + i as f64 * 0.1).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.p_value < 1e-10);
        assert!(r.mean_ranks[1] > r.mean_ranks[0]);
    }

    #[test]
    fn same_distribution_is_insignificant() {
        let a: Vec<f64> = (0..60).map(|i| (i % 11) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| ((i + 5) % 11) as f64).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn known_textbook_value() {
        // Conover-style example with three small groups.
        let g1 = [1.0, 2.0, 3.0, 4.0, 5.0];
        let g2 = [6.0, 7.0, 8.0, 9.0, 10.0];
        let g3 = [11.0, 12.0, 13.0, 14.0, 15.0];
        let r = kruskal_wallis(&[&g1, &g2, &g3]).unwrap();
        // Perfect separation: H = 12.5 for n=15, k=3 with no ties.
        assert!((r.h_statistic - 12.5).abs() < 1e-9, "H = {}", r.h_statistic);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn tie_correction_applied() {
        // Heavy ties shrink the raw H; the corrected H must still flag the
        // obvious shift.
        let a = [1.0, 1.0, 1.0, 2.0, 2.0];
        let b = [9.0, 9.0, 9.0, 10.0, 10.0];
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn error_cases() {
        assert_eq!(kruskal_wallis(&[&[1.0]]).unwrap_err(), KruskalError::TooFewGroups);
        assert_eq!(kruskal_wallis(&[&[1.0], &[]]).unwrap_err(), KruskalError::EmptyGroup);
        assert_eq!(kruskal_wallis(&[&[3.0, 3.0], &[3.0, 3.0]]).unwrap_err(), KruskalError::AllTied);
    }
}
