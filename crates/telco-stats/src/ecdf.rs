//! Empirical cumulative distribution functions.
//!
//! The paper plots ECDFs throughout (Figs. 8, 10, 13, 16). `Ecdf` stores the
//! sorted sample once and answers `F(x)` and quantile queries in `O(log n)`.

use serde::{Deserialize, Serialize};

use crate::desc::percentile_sorted;

/// An empirical CDF over a real-valued sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample (copied and sorted).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "Ecdf requires a nonempty sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Ecdf sample"));
        Ecdf { sorted }
    }

    /// Build from a pre-sorted vector (takes ownership, no copy).
    ///
    /// # Panics
    ///
    /// Panics if empty or not ascending.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        assert!(!sorted.is_empty(), "Ecdf requires a nonempty sample");
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "Ecdf::from_sorted requires ascending input"
        );
        Ecdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = P(X <= x)`, the fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile (inverse CDF) with linear interpolation; `p` in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1]");
        percentile_sorted(&self.sorted, p * 100.0)
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// The underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Step points `(x_i, i/n)` for plotting. Duplicated x values are merged,
    /// keeping the highest step, so the output is strictly increasing in x.
    pub fn step_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(self.sorted.len());
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match pts.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => pts.push((x, y)),
            }
        }
        pts
    }

    /// Evaluate the ECDF on a fixed grid of `n_points` equally spaced x
    /// values between min and max — the series a plotting frontend consumes.
    pub fn grid(&self, n_points: usize) -> Vec<(f64, f64)> {
        assert!(n_points >= 2, "grid needs at least 2 points");
        let (lo, hi) = (self.min(), self.max());
        (0..n_points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n_points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup |F1 - F2|` against
    /// another ECDF. Useful for comparing simulated and target shapes.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn eval_with_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(1.5), 0.75);
        assert_eq!(e.eval(2.0), 1.0);
    }

    #[test]
    fn quantile_and_median() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]);
        assert_eq!(e.median(), 20.0);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 30.0);
    }

    #[test]
    fn step_points_merge_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        let pts = e.step_points();
        assert_eq!(pts, vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn grid_endpoints() {
        let e = Ecdf::new(&[0.0, 1.0, 2.0, 3.0]);
        let g = e.grid(4);
        assert_eq!(g.first().unwrap().0, 0.0);
        assert_eq!(g.last().unwrap(), &(3.0, 1.0));
    }

    #[test]
    fn ks_identical_is_zero_and_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
        let c = Ecdf::new(&[10.0, 11.0]);
        assert_eq!(a.ks_statistic(&c), 1.0);
    }

    #[test]
    fn from_sorted_accepts_ascending() {
        let e = Ecdf::from_sorted(vec![1.0, 1.0, 5.0]);
        assert_eq!(e.len(), 3);
    }

    #[test]
    #[should_panic]
    fn from_sorted_rejects_descending() {
        Ecdf::from_sorted(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn empty_sample_rejected() {
        Ecdf::new(&[]);
    }
}
