//! Special functions underpinning the statistical tests.
//!
//! Implements the natural log of the gamma function, regularized incomplete
//! gamma and beta functions, and the cumulative distribution functions built
//! on top of them (normal, Student's t, chi-squared, Fisher's F, and the
//! studentized range used by Tukey's HSD).
//!
//! All routines are pure `f64` computations with no allocation, accurate to
//! roughly 1e-10 relative error over the ranges exercised by the analyses —
//! far tighter than anything the handover study requires.

/// Machine-level convergence threshold for the iterative expansions.
const EPS: f64 = 1e-14;
/// Smallest representable magnitude guard for Lentz's algorithm.
const FPMIN: f64 = 1e-300;
/// Iteration budget for series/continued-fraction evaluation.
const MAX_ITER: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9) which is accurate to about
/// 1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` (the analyses never evaluate the reflection branch).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. Chooses between the series expansion
/// (for `x < a + 1`) and the continued fraction (otherwise), per the usual
/// numerical-recipes split.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of `Q(a, x)`, convergent for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_0 = 0`, `I_1 = 1`; symmetric under `I_x(a,b) = 1 - I_{1-x}(b,a)`.
/// Evaluated by the continued fraction (modified Lentz), switching branches
/// at the symmetry point for stability.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Standard normal probability density function `φ(z)`.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// Computed via the complementary error function relation
/// `Φ(z) = erfc(-z / √2) / 2`, itself expressed through the regularized
/// incomplete gamma function.
pub fn normal_cdf(z: f64) -> f64 {
    if z == 0.0 {
        return 0.5;
    }
    let p_half = 0.5 * gamma_p(0.5, 0.5 * z * z);
    if z > 0.0 {
        0.5 + p_half
    } else {
        0.5 - p_half
    }
}

/// Inverse of the standard normal CDF (quantile function).
///
/// Uses Acklam's rational approximation refined by one Halley step, accurate
/// to ~1e-12 for `p` in `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// CDF of the chi-squared distribution with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_cdf requires df > 0");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(0.5 * df, 0.5 * x)
}

/// Survival function (upper tail) of the chi-squared distribution.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf requires df > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(0.5 * df, 0.5 * x)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires df > 0");
    let x = df / (df + t * t);
    let p_half = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p_half
    } else {
        p_half
    }
}

/// Two-sided p-value for a t statistic: `P(|T| >= |t|)`.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_sf_two_sided requires df > 0");
    beta_inc(0.5 * df, 0.5, df / (df + t * t))
}

/// CDF of Fisher's F distribution with `(d1, d2)` degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_cdf requires positive dof");
    if f <= 0.0 {
        return 0.0;
    }
    beta_inc(0.5 * d1, 0.5 * d2, d1 * f / (d1 * f + d2))
}

/// Survival function (upper tail) of Fisher's F distribution.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_sf requires positive dof");
    if f <= 0.0 {
        return 1.0;
    }
    beta_inc(0.5 * d2, 0.5 * d1, d2 / (d1 * f + d2))
}

/// CDF of the studentized range distribution: `P(Q <= q)` for the range of
/// `k` independent standard normals divided by an independent χ-based scale
/// with `df` degrees of freedom.
///
/// Used by Tukey's HSD post-hoc test. For `df > 5000` (our sector-day
/// datasets have millions of observations) the infinite-degrees-of-freedom
/// form is used: a single Gauss–Legendre integral of
/// `k ∫ φ(z) [Φ(z) − Φ(z − q)]^{k−1} dz`. For finite `df` the outer scale
/// integral is evaluated with Simpson's rule over the chi density.
pub fn studentized_range_cdf(q: f64, k: f64, df: f64) -> f64 {
    assert!(k >= 2.0, "studentized range needs k >= 2 groups");
    assert!(df > 0.0, "studentized range needs df > 0");
    if q <= 0.0 {
        return 0.0;
    }
    if df > 5000.0 {
        return range_cdf_normal(q, k);
    }
    // Outer integral over the scale variable u ~ chi_df / sqrt(df).
    // Density: f(u) = 2 (df/2)^{df/2} / Γ(df/2) * u^{df-1} e^{-df u^2 / 2}.
    let half_df = 0.5 * df;
    let ln_norm = (2.0f64).ln() + half_df * half_df.ln() - ln_gamma(half_df);
    let f = |u: f64| -> f64 {
        if u <= 0.0 {
            return 0.0;
        }
        let ln_dens = ln_norm + (df - 1.0) * u.ln() - half_df * u * u;
        ln_dens.exp() * range_cdf_normal(q * u, k)
    };
    // The chi/sqrt(df) density concentrates near 1 with sd ~ 1/sqrt(2 df).
    let sd = (0.5 / df).sqrt();
    let lo = (1.0 - 8.0 * sd).max(1e-6);
    let hi = 1.0 + 8.0 * sd;
    simpson(f, lo, hi, 200).min(1.0)
}

/// `P(range of k standard normals <= w)` via Gauss–Legendre quadrature.
fn range_cdf_normal(w: f64, k: f64) -> f64 {
    if w <= 0.0 {
        return 0.0;
    }
    let f = |z: f64| -> f64 {
        let inner = normal_cdf(z) - normal_cdf(z - w);
        normal_pdf(z) * inner.max(0.0).powf(k - 1.0)
    };
    // The integrand is negligible outside roughly [-8, 8 + w].
    k * simpson(f, -8.0, 8.0 + w, 400)
}

/// Composite Simpson's rule with `n` (even, enforced) panels.
fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 0 { 2.0 } else { 4.0 };
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-11);
        close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-11);
        // Gamma(10.5) = 9.5 * 8.5 * ... * 0.5 * sqrt(pi).
        let g = (0..10).map(|k| 0.5 + k as f64).product::<f64>() * std::f64::consts::PI.sqrt();
        close(ln_gamma(10.5), g.ln(), 1e-11);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x).
        close(gamma_p(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-12);
        // Chi-squared with 2 df at x=2 -> P(1,1).
        close(chi2_cdf(2.0, 2.0), 1.0 - (-1.0f64).exp(), 1e-12);
    }

    #[test]
    fn beta_inc_symmetry_and_endpoints() {
        close(beta_inc(2.0, 3.0, 0.0), 0.0, 0.0);
        close(beta_inc(2.0, 3.0, 1.0), 1.0, 0.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (8.0, 2.0, 0.9)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12);
        }
        // I_x(1,1) = x (uniform).
        close(beta_inc(1.0, 1.0, 0.42), 0.42, 1e-12);
    }

    #[test]
    fn normal_cdf_reference_points() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.0), 0.841_344_746_068_543, 1e-10);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-9);
        close(normal_cdf(3.0), 0.998_650_101_968_370, 1e-10);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn t_cdf_reference_points() {
        // With df -> large, t approaches normal.
        close(t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-5);
        // t(df=1) is Cauchy: CDF(1) = 0.75.
        close(t_cdf(1.0, 1.0), 0.75, 1e-10);
        // Symmetry.
        close(t_cdf(-1.3, 7.0) + t_cdf(1.3, 7.0), 1.0, 1e-12);
    }

    #[test]
    fn f_cdf_reference_points() {
        // F(1, d2) is t^2: P(F <= f) = P(|t| <= sqrt(f)).
        let f = 3.84;
        close(f_cdf(f, 1.0, 1e6), 1.0 - t_sf_two_sided(f.sqrt(), 1e6), 1e-9);
        close(f_cdf(1.0, 10.0, 10.0), 0.5, 1e-10); // symmetric at f=1 when d1=d2
        close(f_sf(1.0, 10.0, 10.0), 0.5, 1e-10);
    }

    #[test]
    fn chi2_sf_complement() {
        for &(x, df) in &[(1.0, 1.0), (5.0, 3.0), (20.0, 10.0)] {
            close(chi2_cdf(x, df) + chi2_sf(x, df), 1.0, 1e-12);
        }
    }

    #[test]
    fn studentized_range_known_critical_values() {
        // Classical table: q(0.95; k=3, df=inf) ~ 3.314.
        close(studentized_range_cdf(3.314, 3.0, 1e9), 0.95, 5e-3);
        // q(0.95; k=2, df=inf) = sqrt(2) * z_{0.975} ~ 2.772.
        close(studentized_range_cdf(2.772, 2.0, 1e9), 0.95, 5e-3);
        // Finite df: q(0.95; k=3, df=20) ~ 3.578.
        close(studentized_range_cdf(3.578, 3.0, 20.0), 0.95, 1e-2);
    }

    #[test]
    fn studentized_range_monotone_in_q() {
        let mut prev = 0.0;
        for i in 1..40 {
            let q = i as f64 * 0.2;
            let c = studentized_range_cdf(q, 4.0, 30.0);
            assert!(c >= prev - 1e-12, "CDF must be nondecreasing");
            prev = c;
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
