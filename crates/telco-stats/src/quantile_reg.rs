//! Quantile regression via iteratively reweighted least squares (IRLS) on a
//! smoothed pinball loss — the method behind the paper's Tables 8 and 9
//! (quantile regression of `log(HOF rate)` on the HO type at
//! τ ∈ {0.2, 0.4, 0.6, 0.8}).
//!
//! The check (pinball) loss `ρ_τ(u) = u (τ − 1{u<0})` is minimized by
//! alternating weighted least squares with weights
//! `w_i = |τ − 1{r_i<0}| / max(|r_i|, ε)`, which reproduces the classical
//! Schlossmacher iteration. Standard errors use the asymptotic sandwich
//! `τ(1−τ) / f(0)² · (XᵀX)⁻¹` with the residual density at zero estimated
//! by a Gaussian kernel (Silverman bandwidth).

use serde::{Deserialize, Serialize};

use crate::desc::std_dev;
use crate::linalg::NormalEquations;
use crate::regression::{Coefficient, Design, FitError};
use crate::special::t_sf_two_sided;

/// Result of a quantile regression at a single quantile τ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileFit {
    /// The quantile fitted.
    pub tau: f64,
    /// Per-column coefficient rows.
    pub coefficients: Vec<Coefficient>,
    /// Observations used.
    pub n: usize,
    /// Total pinball loss at the solution.
    pub pinball_loss: f64,
    /// IRLS iterations executed.
    pub iterations: usize,
}

impl QuantileFit {
    /// Look up a coefficient by expanded design-column name.
    pub fn coefficient(&self, name: &str) -> Option<&Coefficient> {
        self.coefficients.iter().find(|c| c.name == name)
    }
}

/// Configuration of the IRLS solver.
#[derive(Debug, Clone, Copy)]
pub struct QuantileOptions {
    /// Maximum IRLS iterations (default 60).
    pub max_iter: usize,
    /// Convergence threshold on the max coefficient change (default 1e-8).
    pub tol: f64,
    /// Residual floor preventing infinite weights (default 1e-6).
    pub eps: f64,
}

impl Default for QuantileOptions {
    fn default() -> Self {
        QuantileOptions { max_iter: 60, tol: 1e-8, eps: 1e-6 }
    }
}

/// Fit a quantile regression at quantile `tau` on a populated design.
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)`.
pub fn quantile_regression(
    design: &Design,
    tau: f64,
    opts: QuantileOptions,
) -> Result<QuantileFit, FitError> {
    assert!(tau > 0.0 && tau < 1.0, "tau must be in (0,1), got {tau}");
    let p = design.width();
    let n = design.n();
    if n <= p {
        return Err(FitError::TooFewObservations);
    }

    // Start from the OLS solution.
    let mut ne = NormalEquations::new(p);
    for (row, y) in design.rows() {
        ne.add(row, y);
    }
    let mut beta = ne.solve().ok_or(FitError::Singular)?;

    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..opts.max_iter {
        iterations += 1;
        let mut wne = NormalEquations::new(p);
        for (row, y) in design.rows() {
            let pred: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
            let r = y - pred;
            let grad_weight = if r < 0.0 { 1.0 - tau } else { tau };
            let w = grad_weight / r.abs().max(opts.eps);
            wne.add_weighted(row, y, w);
        }
        let next = wne.solve().ok_or(FitError::Singular)?;
        let delta = beta.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        beta = next;
        if delta < opts.tol {
            converged = true;
            break;
        }
    }
    if !converged && iterations >= opts.max_iter {
        // IRLS on the smoothed loss oscillates within O(eps) of the optimum;
        // accept the final iterate rather than failing — the coefficients are
        // accurate to well below reporting precision. Only truly diverging
        // fits (NaN) are rejected.
        if beta.iter().any(|b| !b.is_finite()) {
            return Err(FitError::NoConvergence);
        }
    }

    // Residuals, loss, and the sparsity estimate for standard errors.
    let mut residuals = Vec::with_capacity(n);
    let mut loss = 0.0;
    for (row, y) in design.rows() {
        let pred: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
        let r = y - pred;
        residuals.push(r);
        loss += if r >= 0.0 { tau * r } else { (tau - 1.0) * (-r) };
    }
    let f0 = kernel_density_at_zero(&residuals).max(1e-12);
    let inv = ne.xtx_inverse().ok_or(FitError::Singular)?;
    let scale = tau * (1.0 - tau) / (f0 * f0);
    let df = (n - p) as f64;

    let coefficients = beta
        .iter()
        .enumerate()
        .map(|(j, &est)| {
            let se = (scale * inv[(j, j)]).max(0.0).sqrt();
            let t = if se > 0.0 { est / se } else { f64::INFINITY };
            Coefficient {
                name: design.names()[j].clone(),
                estimate: est,
                std_err: se,
                t_value: t,
                p_value: if se > 0.0 { t_sf_two_sided(t, df) } else { 0.0 },
                ci95: (est - 1.959_963_984_540_054 * se, est + 1.959_963_984_540_054 * se),
            }
        })
        .collect();

    Ok(QuantileFit { tau, coefficients, n, pinball_loss: loss, iterations })
}

/// Gaussian kernel density estimate of the residual distribution at zero,
/// with Silverman's rule-of-thumb bandwidth.
fn kernel_density_at_zero(residuals: &[f64]) -> f64 {
    let n = residuals.len();
    let sd = std_dev(residuals).unwrap_or(1.0).max(1e-9);
    let h = 1.06 * sd * (n as f64).powf(-0.2);
    let norm = 1.0 / ((n as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
    residuals.iter().map(|&r| (-0.5 * (r / h) * (r / h)).exp()).sum::<f64>() * norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::Value;

    /// Build a design whose conditional quantiles are known exactly:
    /// y = 10 + 5 * x + e, where e takes values {-1, 0, +1} cyclically, so
    /// the conditional median is exactly 10 + 5x.
    fn median_design() -> Design {
        let mut d = Design::new().intercept().numeric("x");
        for i in 0..300 {
            let x = (i % 10) as f64;
            let e = match i % 3 {
                0 => -1.0,
                1 => 0.0,
                _ => 1.0,
            };
            d.add(&[Value::Num(x)], 10.0 + 5.0 * x + e);
        }
        d
    }

    #[test]
    fn median_regression_recovers_line() {
        let fit = quantile_regression(&median_design(), 0.5, QuantileOptions::default()).unwrap();
        let b0 = fit.coefficient("(Intercept)").unwrap().estimate;
        let b1 = fit.coefficient("x").unwrap().estimate;
        assert!((b0 - 10.0).abs() < 0.15, "intercept {b0}");
        assert!((b1 - 5.0).abs() < 0.05, "slope {b1}");
    }

    #[test]
    fn quantiles_order_correctly() {
        // With symmetric +-1 noise, the 0.2 quantile line sits below the 0.8.
        let d = median_design();
        let lo = quantile_regression(&d, 0.2, QuantileOptions::default()).unwrap();
        let hi = quantile_regression(&d, 0.8, QuantileOptions::default()).unwrap();
        let i_lo = lo.coefficient("(Intercept)").unwrap().estimate;
        let i_hi = hi.coefficient("(Intercept)").unwrap().estimate;
        assert!(i_lo < i_hi, "q20 intercept {i_lo} must sit below q80 {i_hi}");
    }

    #[test]
    fn group_quantile_matches_sample_quantile() {
        // Single categorical covariate: the fitted group levels must track
        // per-group sample quantiles.
        let mut d = Design::new().intercept().categorical("g", &["a", "b"]);
        // Group a: 1..=99; group b: 101..=199.
        for v in 1..=99 {
            d.add(&[Value::Cat(0)], v as f64);
            d.add(&[Value::Cat(1)], (v + 100) as f64);
        }
        let fit = quantile_regression(&d, 0.5, QuantileOptions::default()).unwrap();
        let base = fit.coefficient("(Intercept)").unwrap().estimate;
        let shift = fit.coefficient("g: b").unwrap().estimate;
        assert!((base - 50.0).abs() < 1.0, "median of group a: {base}");
        assert!((shift - 100.0).abs() < 1.5, "group shift: {shift}");
    }

    #[test]
    fn pinball_loss_is_minimal_near_solution() {
        let d = median_design();
        let fit = quantile_regression(&d, 0.5, QuantileOptions::default()).unwrap();
        // Perturbing the intercept must not reduce the pinball loss.
        let beta: Vec<f64> = fit.coefficients.iter().map(|c| c.estimate).collect();
        let loss_at = |b0: f64| -> f64 {
            d.rows()
                .map(|(row, y)| {
                    let pred = b0 * row[0] + beta[1] * row[1];
                    let r = y - pred;
                    if r >= 0.0 {
                        0.5 * r
                    } else {
                        0.5 * -r
                    }
                })
                .sum()
        };
        let l_opt = loss_at(beta[0]);
        assert!(loss_at(beta[0] + 0.5) >= l_opt - 1e-9);
        assert!(loss_at(beta[0] - 0.5) >= l_opt - 1e-9);
    }

    #[test]
    fn standard_errors_positive_and_finite() {
        let fit = quantile_regression(&median_design(), 0.4, QuantileOptions::default()).unwrap();
        for c in &fit.coefficients {
            assert!(c.std_err.is_finite() && c.std_err > 0.0);
            assert!(c.p_value >= 0.0 && c.p_value <= 1.0);
        }
    }

    #[test]
    #[should_panic]
    fn tau_out_of_range_panics() {
        let _ = quantile_regression(&median_design(), 1.0, QuantileOptions::default());
    }
}
