//! Descriptive statistics: means, variances, percentiles and five-number
//! summaries matching the paper's Table 6 ("Summary Stats of Dataset").

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` on an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (divides by `n - 1`). `None` if `n < 2`.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation. `None` if `n < 2`.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population variance (divides by `n`). `None` on an empty slice.
pub fn variance_population(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / xs.len() as f64)
}

/// Percentile with linear interpolation between order statistics (the
/// "type 7" definition used by R's `quantile` default and NumPy).
///
/// `p` in `[0, 100]`. Returns `None` on an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile requires p in [0,100], got {p}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// Percentile of an already ascending-sorted slice (no allocation).
///
/// # Panics
///
/// Panics if the slice is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile_sorted on empty slice");
    assert!((0.0..=100.0).contains(&p), "p must be in [0,100], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile). `None` on an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Five-number summary plus mean, mirroring R's `summary()` output and the
/// paper's Table 6 layout (Min / 1st Qu. / Median / Mean / 3rd Qu. / Max).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Compute the summary of a sample. Returns `None` on an empty slice.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Summary input"));
        Some(Summary {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            mean: mean(xs).expect("nonempty"),
            q3: percentile_sorted(&sorted, 75.0),
            max: *sorted.last().expect("nonempty"),
            n: xs.len(),
        })
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Weighted mean of `(value, weight)` pairs; `None` if total weight is 0.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let wsum: f64 = pairs.iter().map(|&(_, w)| w).sum();
    if wsum <= 0.0 {
        return None;
    }
    Some(pairs.iter().map(|&(x, w)| x * w).sum::<f64>() / wsum)
}

/// Geometric mean of strictly positive samples. `None` if empty or any
/// sample is non-positive.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((variance_population(&xs).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert!(Summary::of(&[]).is_none());
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&xs, 25.0), Some(1.75));
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 13.0), Some(42.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn summary_matches_r_layout() {
        let xs = [1.0, 76.0, 1989.0, 8591.0, 953287.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 953287.0);
        assert_eq!(s.median, 1989.0);
        assert_eq!(s.n, 5);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!((s.iqr() - (s.q3 - s.q1)).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean(&[(1.0, 1.0), (3.0, 3.0)]), Some(2.5));
        assert_eq!(weighted_mean(&[(1.0, 0.0)]), None);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, -1.0]), None);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range_p() {
        percentile(&[1.0], 101.0);
    }
}
