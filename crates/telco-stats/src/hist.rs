//! Histograms with linear and logarithmic binning.
//!
//! The paper's Fig. 13 bins device-level mobility metrics on a log scale and
//! reports the HOF-rate distribution inside each bin; `LogBins` reproduces
//! that binning scheme.

use serde::{Deserialize, Serialize};

/// A fixed-width linear histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram requires lo < hi");
        Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts.iter().enumerate().map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c)).collect()
    }

    /// Normalized frequencies per bin (empty histogram yields zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let t = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }
}

/// Logarithmic bin edges: `base^k` boundaries covering positive values, with
/// an optional dedicated first bin for exact zeros (mobility metrics like
/// radius of gyration are zero for stationary devices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogBins {
    /// Ascending positive bin edges; bin `i` covers `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    /// Whether a zero bin precedes the positive bins.
    zero_bin: bool,
}

impl LogBins {
    /// Build edges `base^min_exp .. base^max_exp` (inclusive ends), with an
    /// extra bin for exact zeros when `zero_bin` is set.
    ///
    /// # Panics
    ///
    /// Panics if `base <= 1` or `min_exp >= max_exp`.
    pub fn new(base: f64, min_exp: i32, max_exp: i32, zero_bin: bool) -> Self {
        assert!(base > 1.0, "log bins require base > 1");
        assert!(min_exp < max_exp, "log bins require min_exp < max_exp");
        let edges = (min_exp..=max_exp).map(|k| base.powi(k)).collect();
        LogBins { edges, zero_bin }
    }

    /// Number of bins (including the zero bin when present, plus one
    /// overflow bin for values `>=` the last edge).
    pub fn n_bins(&self) -> usize {
        let positive = self.edges.len(); // len-1 interior + 1 overflow
        positive + usize::from(self.zero_bin)
    }

    /// Bin index for a value, or `None` for values below the first edge
    /// (other than exact zero when a zero bin exists) or negative values.
    pub fn index(&self, x: f64) -> Option<usize> {
        if x < 0.0 {
            return None;
        }
        let offset = usize::from(self.zero_bin);
        if self.zero_bin && x == 0.0 {
            return Some(0);
        }
        if x < self.edges[0] {
            // Sub-range positive values: merged into the first positive bin
            // when a zero bin exists is NOT done; they are out of range.
            return None;
        }
        // partition_point returns the count of edges <= x.
        let k = self.edges.partition_point(|&e| e <= x);
        Some(offset + k - 1)
    }

    /// Human-readable label for a bin index, e.g. `"0"`, `"[10,100)"`,
    /// `">=1000"`.
    pub fn label(&self, bin: usize) -> String {
        let offset = usize::from(self.zero_bin);
        if self.zero_bin && bin == 0 {
            return "0".to_string();
        }
        let k = bin - offset;
        if k + 1 < self.edges.len() {
            format!("[{},{})", fmt_edge(self.edges[k]), fmt_edge(self.edges[k + 1]))
        } else {
            format!(">={}", fmt_edge(*self.edges.last().expect("nonempty")))
        }
    }

    /// Ascending positive edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }
}

fn fmt_edge(e: f64) -> String {
    if e >= 1.0 && e.fract() == 0.0 {
        format!("{}", e as i64)
    } else {
        format!("{e}")
    }
}

/// Accumulates samples of a dependent variable within log bins of an
/// independent variable — Fig. 13's construction (HOF rate vs binned
/// mobility metric).
#[derive(Debug, Clone)]
pub struct BinnedSamples {
    bins: LogBins,
    samples: Vec<Vec<f64>>,
}

impl BinnedSamples {
    /// Create an accumulator over the given binning.
    pub fn new(bins: LogBins) -> Self {
        let n = bins.n_bins();
        BinnedSamples { bins, samples: vec![Vec::new(); n] }
    }

    /// Record `(x, y)`; `x` selects the bin, `y` is accumulated. Values of
    /// `x` outside the binning are dropped (mirrors the paper's trimming).
    pub fn add(&mut self, x: f64, y: f64) {
        if let Some(i) = self.bins.index(x) {
            self.samples[i].push(y);
        }
    }

    /// The samples accumulated in each bin.
    pub fn bin_samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// The binning scheme.
    pub fn bins(&self) -> &LogBins {
        &self.bins
    }

    /// Count of observations per bin.
    pub fn counts(&self) -> Vec<usize> {
        self.samples.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_fills_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.add(i as f64);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(1.0);
        h.add(5.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.9] {
            h.add(x);
        }
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_bins_index_decades() {
        let b = LogBins::new(10.0, 0, 3, true); // 0 | [1,10) [10,100) [100,1000) >=1000
        assert_eq!(b.n_bins(), 5);
        assert_eq!(b.index(0.0), Some(0));
        assert_eq!(b.index(1.0), Some(1));
        assert_eq!(b.index(9.99), Some(1));
        assert_eq!(b.index(10.0), Some(2));
        assert_eq!(b.index(999.0), Some(3));
        assert_eq!(b.index(1000.0), Some(4));
        assert_eq!(b.index(1e9), Some(4));
        assert_eq!(b.index(0.5), None);
        assert_eq!(b.index(-1.0), None);
    }

    #[test]
    fn log_bins_labels() {
        let b = LogBins::new(10.0, 0, 2, true);
        assert_eq!(b.label(0), "0");
        assert_eq!(b.label(1), "[1,10)");
        assert_eq!(b.label(2), "[10,100)");
        assert_eq!(b.label(3), ">=100");
    }

    #[test]
    fn binned_samples_accumulate() {
        let mut bs = BinnedSamples::new(LogBins::new(10.0, 0, 2, false));
        bs.add(5.0, 0.1);
        bs.add(50.0, 0.2);
        bs.add(50.0, 0.3);
        bs.add(0.5, 9.9); // out of range, dropped
        assert_eq!(bs.counts(), vec![1, 2, 0]);
        assert_eq!(bs.bin_samples()[1], vec![0.2, 0.3]);
    }
}
