//! Regression trees and random forests.
//!
//! Appendix B of the paper benchmarks its linear models against a Random
//! Forest (Breiman 2001), finding "comparable performance in terms of
//! RMSE and MAE". This is a dependency-free CART implementation with
//! bootstrap aggregation and per-split feature subsampling, deterministic
//! given its seed.

use serde::{Deserialize, Serialize};

use crate::regression::Design;

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestOptions {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Fraction of features considered at each split.
    pub feature_fraction: f64,
    /// Candidate split thresholds per feature (quantile grid).
    pub n_thresholds: usize,
    /// RNG seed (bootstrap + feature subsampling).
    pub seed: u64,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            n_trees: 30,
            max_depth: 8,
            min_leaf: 10,
            feature_fraction: 0.7,
            n_thresholds: 8,
            seed: 0xF0E5,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `<=` child in the node arena.
        left: usize,
        /// Index of the `>` child.
        right: usize,
    },
}

/// A single CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Predict for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never after fitting).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &mut [usize],
        opts: &ForestOptions,
        rng: &mut SplitMix,
    ) -> Self {
        let mut nodes = Vec::new();
        build_node(x, y, indices, 0, opts, rng, &mut nodes);
        RegressionTree { nodes }
    }
}

/// Recursively grow a node over `indices`; returns the node's index.
fn build_node(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &mut [usize],
    depth: usize,
    opts: &ForestOptions,
    rng: &mut SplitMix,
    nodes: &mut Vec<Node>,
) -> usize {
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
    if depth >= opts.max_depth || indices.len() < 2 * opts.min_leaf {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    }

    let n_features = x[0].len();
    let k = ((n_features as f64 * opts.feature_fraction).ceil() as usize).clamp(1, n_features);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let parent_ss: f64 = indices.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();

    for _ in 0..k {
        let feature = (rng.next() as usize) % n_features;
        // Candidate thresholds from the feature's quantiles over this node.
        let mut values: Vec<f64> = indices.iter().map(|&i| x[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        for t in 1..=opts.n_thresholds {
            let q = t as f64 / (opts.n_thresholds + 1) as f64;
            let threshold = values[((values.len() - 1) as f64 * q) as usize];
            // Score the split: total within-child sum of squares.
            let (mut n_l, mut s_l, mut ss_l) = (0.0, 0.0, 0.0);
            let (mut n_r, mut s_r, mut ss_r) = (0.0, 0.0, 0.0);
            for &i in indices.iter() {
                if x[i][feature] <= threshold {
                    n_l += 1.0;
                    s_l += y[i];
                    ss_l += y[i] * y[i];
                } else {
                    n_r += 1.0;
                    s_r += y[i];
                    ss_r += y[i] * y[i];
                }
            }
            if (n_l as usize) < opts.min_leaf || (n_r as usize) < opts.min_leaf {
                continue;
            }
            let within = (ss_l - s_l * s_l / n_l) + (ss_r - s_r * s_r / n_r);
            let gain = parent_ss - within;
            if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                best = Some((feature, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    };

    // Partition indices in place.
    let mid = partition(indices, |&i| x[i][feature] <= threshold);
    if mid == 0 || mid == indices.len() {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    }
    // Reserve this node's slot, then grow children.
    let me = nodes.len();
    nodes.push(Node::Leaf { value: mean }); // placeholder
    let (left_idx, right_idx) = {
        let (l, r) = indices.split_at_mut(mid);
        let li = build_node(x, y, l, depth + 1, opts, rng, nodes);
        let ri = build_node(x, y, r, depth + 1, opts, rng, nodes);
        (li, ri)
    };
    nodes[me] = Node::Split { feature, threshold, left: left_idx, right: right_idx };
    me
}

fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(i, store);
            store += 1;
        }
    }
    store
}

/// A bagged ensemble of regression trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

/// Fit-quality metrics for comparing against the linear models
/// (Appendix B compares RMSE and MAE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitQuality {
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// R² of predictions.
    pub r_squared: f64,
}

impl RandomForest {
    /// Fit a forest on a populated regression design.
    ///
    /// # Panics
    ///
    /// Panics if the design has no observations.
    pub fn fit(design: &Design, opts: ForestOptions) -> Self {
        assert!(design.n() > 0, "cannot fit a forest on an empty design");
        let x: Vec<Vec<f64>> = design.rows().map(|(row, _)| row.to_vec()).collect();
        let y: Vec<f64> = design.rows().map(|(_, y)| y).collect();
        let n = x.len();
        let mut rng = SplitMix::new(opts.seed);
        let trees = (0..opts.n_trees)
            .map(|_| {
                // Bootstrap sample with replacement.
                let mut indices: Vec<usize> = (0..n).map(|_| (rng.next() as usize) % n).collect();
                RegressionTree::fit(&x, &y, &mut indices, &opts, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Predict one feature row (mean over trees).
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Evaluate on a design (typically the training design, as in the
    /// paper's in-sample comparison).
    pub fn evaluate(&self, design: &Design) -> FitQuality {
        let n = design.n() as f64;
        let mut se = 0.0;
        let mut ae = 0.0;
        let mut ys = Vec::with_capacity(design.n());
        let mut preds = Vec::with_capacity(design.n());
        for (row, y) in design.rows() {
            let p = self.predict(row);
            se += (y - p) * (y - p);
            ae += (y - p).abs();
            ys.push(y);
            preds.push(p);
        }
        FitQuality {
            rmse: (se / n).sqrt(),
            mae: ae / n,
            r_squared: crate::corr::r_squared_of_predictions(&ys, &preds).unwrap_or(0.0),
        }
    }
}

/// SplitMix64: tiny deterministic RNG (keeps this crate dependency-free).
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::{ols, Value};

    /// A nonlinear target the linear model cannot represent but a forest
    /// can: y = step(x1 > 0.5) * 4 + x2.
    fn nonlinear_design(n: usize) -> Design {
        let mut d = Design::new().numeric("x1").numeric("x2");
        let mut rng = SplitMix::new(7);
        for _ in 0..n {
            let x1 = (rng.next() % 1000) as f64 / 1000.0;
            let x2 = (rng.next() % 1000) as f64 / 1000.0;
            let y = if x1 > 0.5 { 4.0 } else { 0.0 } + x2;
            d.add(&[Value::Num(x1), Value::Num(x2)], y);
        }
        d
    }

    #[test]
    fn forest_learns_a_step_function() {
        let d = nonlinear_design(2000);
        let forest = RandomForest::fit(&d, ForestOptions::default());
        let q = forest.evaluate(&d);
        assert!(q.rmse < 0.5, "RMSE {}", q.rmse);
        assert!(q.r_squared > 0.9, "R² {}", q.r_squared);
        // Spot predictions on both sides of the step.
        assert!(forest.predict(&[0.9, 0.0]) > 3.0);
        assert!(forest.predict(&[0.1, 0.0]) < 1.0);
    }

    #[test]
    fn forest_beats_linear_model_on_nonlinear_data() {
        let mut d = Design::new().intercept().numeric("x1").numeric("x2");
        let base = nonlinear_design(2000);
        for (row, y) in base.rows() {
            d.add(&[Value::Num(row[0]), Value::Num(row[1])], y);
        }
        let linear = ols(&d).unwrap();
        let forest = RandomForest::fit(&base, ForestOptions::default());
        let fq = forest.evaluate(&base);
        assert!(
            fq.rmse < linear.rmse,
            "forest RMSE {} should beat linear {}",
            fq.rmse,
            linear.rmse
        );
    }

    #[test]
    fn fitting_is_deterministic() {
        let d = nonlinear_design(500);
        let a = RandomForest::fit(&d, ForestOptions::default());
        let b = RandomForest::fit(&d, ForestOptions::default());
        assert_eq!(a, b);
        let opts = ForestOptions { seed: 99, ..Default::default() };
        let c = RandomForest::fit(&d, opts);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn depth_and_leaf_limits_respected() {
        let d = nonlinear_design(300);
        let opts = ForestOptions { n_trees: 3, max_depth: 2, min_leaf: 50, ..Default::default() };
        let forest = RandomForest::fit(&d, opts);
        // Depth 2 → at most 7 nodes per tree.
        for tree in &forest.trees {
            assert!(tree.len() <= 7, "tree has {} nodes", tree.len());
        }
    }

    #[test]
    fn constant_target_yields_constant_prediction() {
        let mut d = Design::new().numeric("x");
        for i in 0..100 {
            d.add(&[Value::Num(i as f64)], 5.0);
        }
        let forest = RandomForest::fit(&d, ForestOptions::default());
        assert!((forest.predict(&[42.0]) - 5.0).abs() < 1e-9);
        assert_eq!(forest.evaluate(&d).rmse, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_design_rejected() {
        let d = Design::new().numeric("x");
        RandomForest::fit(&d, ForestOptions::default());
    }
}
