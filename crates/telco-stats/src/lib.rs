//! # telco-stats
//!
//! Self-contained statistics library backing the handover study's analyses.
//! No external numeric dependencies: special functions, descriptive
//! statistics, ECDFs, histograms, correlation, OLS regression with
//! categorical covariates, quantile regression, one-way ANOVA with Tukey's
//! HSD, and the Kruskal–Wallis test — everything §6.3 and Appendix B of
//! *Through the Telco Lens* (IMC '24) require.
//!
//! ## Example
//!
//! ```
//! use telco_stats::regression::{Design, Value, ols};
//!
//! // Model log(HOF rate) ~ HO type, as in the paper's Table 4.
//! let mut d = Design::new().intercept().categorical(
//!     "HO type",
//!     &["Intra 4G/5G-NSA", "4G/5G-NSA->3G", "4G/5G-NSA->2G"],
//! );
//! // Toy observations: intra HOs fail rarely, vertical HOs often.
//! for i in 0..50 {
//!     let jitter = (i % 5) as f64 * 0.01;
//!     d.add(&[Value::Cat(0)], -2.8 + jitter);
//!     d.add(&[Value::Cat(1)], 2.3 + jitter);
//!     d.add(&[Value::Cat(2)], 4.0 + jitter);
//! }
//! let fit = ols(&d).unwrap();
//! let to3g = fit.coefficient("HO type: 4G/5G-NSA->3G").unwrap();
//! assert!(to3g.estimate > 4.0 && to3g.p_value < 1e-6);
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod boxplot;
pub mod corr;
pub mod desc;
pub mod ecdf;
pub mod forest;
pub mod hist;
pub mod kruskal;
pub mod linalg;
pub mod quantile_reg;
pub mod regression;
pub mod special;

pub use anova::{one_way_anova, tukey_hsd, AnovaResult};
pub use boxplot::BoxplotStats;
pub use corr::{linear_fit, pearson, r_squared, spearman};
pub use desc::{mean, median, percentile, std_dev, variance, Summary};
pub use ecdf::Ecdf;
pub use forest::{ForestOptions, RandomForest};
pub use hist::{BinnedSamples, Histogram, LogBins};
pub use kruskal::{kruskal_wallis, KruskalResult};
pub use quantile_reg::{quantile_regression, QuantileFit, QuantileOptions};
pub use regression::{ols, Coefficient, Design, FitError, OlsFit, Value};
