//! Correlation and goodness-of-fit measures.
//!
//! The paper reports Pearson correlations (0.97 between HO density and
//! population density, 0.9 between HOs and active sectors) and the `R² =
//! 0.92` of the census-vs-inferred-population fit (Fig. 5).

/// Pearson product-moment correlation coefficient.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = midranks(x);
    let ry = midranks(y);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (ties get the average of their rank positions).
pub fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in midranks"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Ordinary least squares fit of `y = a + b x`; returns `(intercept, slope)`.
///
/// `None` under the same degeneracy conditions as [`pearson`].
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxy += (xi - mx) * (yi - my);
        sxx += (xi - mx) * (xi - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

/// Coefficient of determination of the simple linear fit `y ~ x`.
///
/// For simple linear regression this equals the squared Pearson
/// correlation, which is what the paper quotes for Fig. 5.
pub fn r_squared(x: &[f64], y: &[f64]) -> Option<f64> {
    pearson(x, y).map(|r| r * r)
}

/// R² of predictions against observations: `1 - SS_res / SS_tot`.
///
/// Unlike [`r_squared`] this accepts arbitrary predictions (multi-variable
/// models) and can be negative for fits worse than the mean.
pub fn r_squared_of_predictions(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    if observed.len() != predicted.len() || observed.len() < 2 {
        return None;
    }
    let my = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - my) * (y - my)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = observed.iter().zip(predicted).map(|(y, p)| (y - p) * (y - p)).sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_lines() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0, 3.0, 4.0]), None);
    }

    #[test]
    fn pearson_known_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.8).abs() < 1e-12);
    }

    #[test]
    fn midranks_handle_ties() {
        assert_eq!(midranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 8.0, 27.0, 64.0]; // monotone, nonlinear
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let (a, b) = linear_fit(&x, &y).unwrap();
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_matches_pearson_squared() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.2, 1.9, 3.2, 3.8, 5.1];
        let r = pearson(&x, &y).unwrap();
        assert!((r_squared(&x, &y).unwrap() - r * r).abs() < 1e-12);
    }

    #[test]
    fn r_squared_of_predictions_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared_of_predictions(&y, &y).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared_of_predictions(&y, &mean_pred).unwrap().abs() < 1e-12);
    }
}
