//! One-way analysis of variance and Tukey's HSD post-hoc test.
//!
//! The paper (§6.3, Appendix B) runs one-way ANOVA of log-transformed HOF
//! rates on the HO type — reporting `F(2, 3857071) = 8.01e6, p < .001,
//! η² = 0.81` — followed by Tukey HSD pairwise comparisons, and repeats the
//! test for antenna vendor and area type (significant but small η²).

use serde::{Deserialize, Serialize};

use crate::special::{f_sf, studentized_range_cdf};

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnovaResult {
    /// F statistic.
    pub f_statistic: f64,
    /// Between-groups degrees of freedom (`k − 1`).
    pub df_between: f64,
    /// Within-groups degrees of freedom (`n − k`).
    pub df_within: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
    /// Effect size η² = SS_between / SS_total.
    pub eta_squared: f64,
    /// Between-group sum of squares.
    pub ss_between: f64,
    /// Within-group sum of squares.
    pub ss_within: f64,
    /// Per-group sizes.
    pub group_sizes: Vec<usize>,
    /// Per-group means.
    pub group_means: Vec<f64>,
}

/// Errors from the grouped tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnovaError {
    /// Fewer than two groups were supplied.
    TooFewGroups,
    /// A group was empty.
    EmptyGroup,
    /// No residual degrees of freedom (every group has one observation).
    NoResidualDof,
    /// All observations are identical; the F statistic is undefined.
    ZeroVariance,
}

impl std::fmt::Display for AnovaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnovaError::TooFewGroups => write!(f, "ANOVA needs at least two groups"),
            AnovaError::EmptyGroup => write!(f, "ANOVA groups must be nonempty"),
            AnovaError::NoResidualDof => write!(f, "no residual degrees of freedom"),
            AnovaError::ZeroVariance => write!(f, "zero within-group variance everywhere"),
        }
    }
}

impl std::error::Error for AnovaError {}

/// One-way ANOVA over `groups` of observations.
pub fn one_way_anova(groups: &[&[f64]]) -> Result<AnovaResult, AnovaError> {
    if groups.len() < 2 {
        return Err(AnovaError::TooFewGroups);
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(AnovaError::EmptyGroup);
    }
    let k = groups.len();
    let n: usize = groups.iter().map(|g| g.len()).sum();
    if n <= k {
        return Err(AnovaError::NoResidualDof);
    }
    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n as f64;
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    let mut group_means = Vec::with_capacity(k);
    for g in groups {
        let m = g.iter().sum::<f64>() / g.len() as f64;
        group_means.push(m);
        ss_between += g.len() as f64 * (m - grand_mean) * (m - grand_mean);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    }
    let df_b = (k - 1) as f64;
    let df_w = (n - k) as f64;
    if ss_within == 0.0 && ss_between == 0.0 {
        return Err(AnovaError::ZeroVariance);
    }
    let f = if ss_within == 0.0 { f64::INFINITY } else { (ss_between / df_b) / (ss_within / df_w) };
    let p = if f.is_finite() { f_sf(f, df_b, df_w) } else { 0.0 };
    Ok(AnovaResult {
        f_statistic: f,
        df_between: df_b,
        df_within: df_w,
        p_value: p,
        eta_squared: ss_between / (ss_between + ss_within),
        ss_between,
        ss_within,
        group_sizes: groups.iter().map(|g| g.len()).collect(),
        group_means,
    })
}

/// One pairwise comparison from Tukey's HSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TukeyComparison {
    /// Index of the first group.
    pub group_a: usize,
    /// Index of the second group.
    pub group_b: usize,
    /// Mean difference `mean_b − mean_a`.
    pub diff: f64,
    /// Studentized range statistic for the pair.
    pub q_statistic: f64,
    /// Adjusted p-value from the studentized range distribution.
    pub p_adj: f64,
    /// Whether the difference is significant at the 5% family-wise level.
    pub significant: bool,
}

/// Tukey's honestly-significant-difference post-hoc test following a
/// one-way ANOVA. Uses the Tukey–Kramer correction for unequal group sizes.
pub fn tukey_hsd(groups: &[&[f64]], anova: &AnovaResult) -> Vec<TukeyComparison> {
    let k = groups.len();
    let mse = anova.ss_within / anova.df_within;
    let mut out = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            let na = groups[a].len() as f64;
            let nb = groups[b].len() as f64;
            let diff = anova.group_means[b] - anova.group_means[a];
            // Tukey–Kramer standard error.
            let se = (mse * 0.5 * (1.0 / na + 1.0 / nb)).sqrt();
            let q = if se > 0.0 { diff.abs() / se } else { f64::INFINITY };
            let p_adj = if q.is_finite() {
                1.0 - studentized_range_cdf(q, k as f64, anova.df_within)
            } else {
                0.0
            };
            out.push(TukeyComparison {
                group_a: a,
                group_b: b,
                diff,
                q_statistic: q,
                p_adj: p_adj.clamp(0.0, 1.0),
                significant: p_adj < 0.05,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anova_detects_separated_groups() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 5.0 + (i % 3) as f64 * 0.1).collect();
        let c: Vec<f64> = (0..30).map(|i| 9.0 + (i % 3) as f64 * 0.1).collect();
        let r = one_way_anova(&[&a, &b, &c]).unwrap();
        assert!(r.f_statistic > 1000.0);
        assert!(r.p_value < 1e-10);
        assert!(r.eta_squared > 0.99);
        assert_eq!(r.group_sizes, vec![30, 30, 30]);
    }

    #[test]
    fn anova_identical_means_small_f() {
        let a: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| ((i + 3) % 7) as f64).collect();
        let r = one_way_anova(&[&a, &b]).unwrap();
        assert!(r.p_value > 0.05, "same-distribution groups: p = {}", r.p_value);
        assert!(r.eta_squared < 0.05);
    }

    #[test]
    fn anova_known_textbook_value() {
        // Classic small example.
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert!((r.f_statistic - 9.3).abs() < 0.1, "F = {}", r.f_statistic);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn anova_error_cases() {
        assert_eq!(one_way_anova(&[&[1.0, 2.0]]).unwrap_err(), AnovaError::TooFewGroups);
        assert_eq!(one_way_anova(&[&[1.0], &[]]).unwrap_err(), AnovaError::EmptyGroup);
        assert_eq!(one_way_anova(&[&[1.0], &[2.0]]).unwrap_err(), AnovaError::NoResidualDof);
        assert_eq!(
            one_way_anova(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap_err(),
            AnovaError::ZeroVariance
        );
    }

    #[test]
    fn tukey_flags_the_separated_pair() {
        let a: Vec<f64> = (0..20).map(|i| 1.0 + (i % 5) as f64 * 0.05).collect();
        let b: Vec<f64> = (0..20).map(|i| 1.02 + (i % 5) as f64 * 0.05).collect();
        let c: Vec<f64> = (0..20).map(|i| 9.0 + (i % 5) as f64 * 0.05).collect();
        let groups: [&[f64]; 3] = [&a, &b, &c];
        let r = one_way_anova(&groups).unwrap();
        let cmp = tukey_hsd(&groups, &r);
        assert_eq!(cmp.len(), 3);
        let ab = cmp.iter().find(|x| x.group_a == 0 && x.group_b == 1).unwrap();
        let ac = cmp.iter().find(|x| x.group_a == 0 && x.group_b == 2).unwrap();
        assert!(!ab.significant, "near-identical groups must not be flagged");
        assert!(ac.significant, "well-separated groups must be flagged");
        assert!(ac.p_adj < 0.001);
    }

    #[test]
    fn tukey_diff_sign_matches_means() {
        let lo = [1.0, 1.1, 0.9, 1.0];
        let hi = [2.0, 2.1, 1.9, 2.0];
        let groups: [&[f64]; 2] = [&lo, &hi];
        let r = one_way_anova(&groups).unwrap();
        let cmp = tukey_hsd(&groups, &r);
        assert!(cmp[0].diff > 0.0);
    }
}
