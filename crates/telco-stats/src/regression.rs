//! Ordinary least squares with categorical covariates — the machinery behind
//! the paper's Tables 4, 5 and 7 (generalized linear model on
//! `log(HOF rate)` with HO type, area type, vendor, region, population).
//!
//! A [`Design`] declares the covariates (numeric columns and categorical
//! columns with a baseline level, expanded to dummy variables), collects
//! observations, and [`ols`] produces the familiar regression summary:
//! estimate, standard error, t value, two-sided p-value, plus N, R², RMSE,
//! MAE and AIC.

use serde::{Deserialize, Serialize};

use crate::linalg::NormalEquations;
use crate::special::t_sf_two_sided;

/// A covariate value supplied for one observation, matching the order in
/// which columns were declared on the [`Design`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A numeric covariate.
    Num(f64),
    /// A categorical covariate given as a level index (0 = baseline).
    Cat(usize),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ColumnSpec {
    Intercept,
    Numeric { name: String },
    Categorical { name: String, levels: Vec<String> },
}

/// A regression design: declared covariates plus collected observations.
///
/// Categorical columns use treatment (dummy) coding with the first declared
/// level as the baseline, matching R's `lm` defaults that the paper's tables
/// reflect (e.g. "HO type: 4G/5G-NSA→3G" with intra 4G/5G-NSA absorbed into
/// the intercept).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    columns: Vec<ColumnSpec>,
    /// Expanded design-matrix column names.
    names: Vec<String>,
    /// Expanded width (number of design columns).
    p: usize,
    /// Flattened row-major design matrix.
    x: Vec<f64>,
    /// Responses.
    y: Vec<f64>,
}

impl Design {
    /// Empty design with no columns.
    pub fn new() -> Self {
        Design { columns: Vec::new(), names: Vec::new(), p: 0, x: Vec::new(), y: Vec::new() }
    }

    /// Add an intercept column named `(Intercept)`.
    ///
    /// # Panics
    ///
    /// Panics if observations were already added.
    pub fn intercept(mut self) -> Self {
        self.assert_no_rows();
        self.columns.push(ColumnSpec::Intercept);
        self.names.push("(Intercept)".to_string());
        self.p += 1;
        self
    }

    /// Add a numeric covariate.
    pub fn numeric(mut self, name: &str) -> Self {
        self.assert_no_rows();
        self.columns.push(ColumnSpec::Numeric { name: name.to_string() });
        self.names.push(name.to_string());
        self.p += 1;
        self
    }

    /// Add a categorical covariate with the given levels; the first level is
    /// the baseline and produces no column.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are supplied.
    pub fn categorical(mut self, name: &str, levels: &[&str]) -> Self {
        self.assert_no_rows();
        assert!(levels.len() >= 2, "categorical covariate needs >= 2 levels");
        for level in &levels[1..] {
            self.names.push(format!("{name}: {level}"));
        }
        self.p += levels.len() - 1;
        self.columns.push(ColumnSpec::Categorical {
            name: name.to_string(),
            levels: levels.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    fn assert_no_rows(&self) {
        assert!(self.y.is_empty(), "cannot change columns after adding observations");
    }

    /// Expanded design-matrix column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of expanded design columns.
    pub fn width(&self) -> usize {
        self.p
    }

    /// Number of observations collected so far.
    pub fn n(&self) -> usize {
        self.y.len()
    }

    /// Add one observation. `values` must match the declared non-intercept
    /// columns in order; `y` is the response.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, wrong value kind, or out-of-range level.
    pub fn add(&mut self, values: &[Value], y: f64) {
        let expected: usize =
            self.columns.iter().filter(|c| !matches!(c, ColumnSpec::Intercept)).count();
        assert_eq!(values.len(), expected, "expected {expected} covariate values");
        let mut row = Vec::with_capacity(self.p);
        let mut vi = 0;
        for col in &self.columns {
            match col {
                ColumnSpec::Intercept => row.push(1.0),
                ColumnSpec::Numeric { name } => {
                    match values[vi] {
                        Value::Num(v) => row.push(v),
                        Value::Cat(_) => panic!("column '{name}' expects a numeric value"),
                    }
                    vi += 1;
                }
                ColumnSpec::Categorical { name, levels } => {
                    let idx = match values[vi] {
                        Value::Cat(i) => i,
                        Value::Num(_) => panic!("column '{name}' expects a level index"),
                    };
                    assert!(idx < levels.len(), "level index {idx} out of range for '{name}'");
                    for k in 1..levels.len() {
                        row.push(if k == idx { 1.0 } else { 0.0 });
                    }
                    vi += 1;
                }
            }
        }
        self.x.extend_from_slice(&row);
        self.y.push(y);
    }

    /// Iterate over `(row, y)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.y.iter().enumerate().map(move |(i, &y)| (&self.x[i * self.p..(i + 1) * self.p], y))
    }
}

impl Default for Design {
    fn default() -> Self {
        Self::new()
    }
}

/// One fitted coefficient with its inference statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coefficient {
    /// Expanded design-column name (e.g. `"HO type: 4G/5G-NSA→3G"`).
    pub name: String,
    /// Point estimate.
    pub estimate: f64,
    /// Standard error.
    pub std_err: f64,
    /// `estimate / std_err`.
    pub t_value: f64,
    /// Two-sided p-value under the t distribution with `n - p` dof.
    pub p_value: f64,
    /// 95% confidence interval (normal approximation for large n).
    pub ci95: (f64, f64),
}

/// A fitted OLS model summary, mirroring the footer of the paper's
/// regression tables (`N`, `RMSE`, `R²`, `AIC`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OlsFit {
    /// Per-column coefficient rows.
    pub coefficients: Vec<Coefficient>,
    /// Number of observations.
    pub n: usize,
    /// Residual degrees of freedom (`n - p`).
    pub df_resid: usize,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Root mean squared error of residuals.
    pub rmse: f64,
    /// Mean absolute error of residuals.
    pub mae: f64,
    /// Akaike information criterion under the Gaussian likelihood.
    pub aic: f64,
    /// Residual variance estimate `σ²`.
    pub sigma2: f64,
}

impl OlsFit {
    /// Look up a coefficient by (exact) expanded name.
    pub fn coefficient(&self, name: &str) -> Option<&Coefficient> {
        self.coefficients.iter().find(|c| c.name == name)
    }

    /// Predicted value for a design row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.coefficients.len(), "row width mismatch");
        row.iter().zip(&self.coefficients).map(|(x, c)| x * c.estimate).sum()
    }
}

/// Errors from fitting a regression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than design columns (plus one residual dof).
    TooFewObservations,
    /// The design matrix is rank deficient (collinear columns).
    Singular,
    /// IRLS failed to converge within its iteration budget.
    NoConvergence,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations => write!(f, "too few observations for the design"),
            FitError::Singular => write!(f, "design matrix is singular (collinear covariates)"),
            FitError::NoConvergence => write!(f, "iterative fit did not converge"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit ordinary least squares on a populated design.
pub fn ols(design: &Design) -> Result<OlsFit, FitError> {
    let p = design.width();
    let n = design.n();
    if n <= p {
        return Err(FitError::TooFewObservations);
    }
    let mut ne = NormalEquations::new(p);
    let mut sum_y = 0.0;
    for (row, y) in design.rows() {
        ne.add(row, y);
        sum_y += y;
    }
    let beta = ne.solve().ok_or(FitError::Singular)?;
    let inv = ne.xtx_inverse().ok_or(FitError::Singular)?;

    // Residual sum of squares via the quadratic form (single pass already
    // accumulated): SS_res = yᵀy − 2βᵀXᵀy + βᵀXᵀXβ = yᵀy − βᵀXᵀy (at the
    // normal-equations solution XᵀXβ = Xᵀy).
    let bxty: f64 = beta.iter().zip(&ne.xty).map(|(b, v)| b * v).sum();
    let ss_res = (ne.yty - bxty).max(0.0);
    let mean_y = sum_y / n as f64;
    let ss_tot = (ne.yty - n as f64 * mean_y * mean_y).max(0.0);

    // MAE needs the residuals themselves — one more cheap pass.
    let mut abs_sum = 0.0;
    for (row, y) in design.rows() {
        let pred: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
        abs_sum += (y - pred).abs();
    }

    let df = (n - p) as f64;
    let sigma2 = ss_res / df;
    let coefficients = beta
        .iter()
        .enumerate()
        .map(|(j, &est)| {
            let se = (sigma2 * inv[(j, j)]).max(0.0).sqrt();
            let t = if se > 0.0 { est / se } else { f64::INFINITY };
            let pval = if se > 0.0 { t_sf_two_sided(t, df) } else { 0.0 };
            Coefficient {
                name: design.names()[j].clone(),
                estimate: est,
                std_err: se,
                t_value: t,
                p_value: pval,
                ci95: (est - 1.959_963_984_540_054 * se, est + 1.959_963_984_540_054 * se),
            }
        })
        .collect();

    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 0.0 };
    let adj = 1.0 - (1.0 - r2) * (n as f64 - 1.0) / df;
    // Gaussian AIC: n ln(SS_res / n) + 2 (p + 1), dropping the constant.
    let aic = n as f64 * (ss_res / n as f64).max(1e-300).ln() + 2.0 * (p as f64 + 1.0);
    Ok(OlsFit {
        coefficients,
        n,
        df_resid: n - p,
        r_squared: r2,
        adj_r_squared: adj,
        rmse: (ss_res / n as f64).sqrt(),
        mae: abs_sum / n as f64,
        aic,
        sigma2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_design(noise: &[f64]) -> Design {
        let mut d = Design::new().intercept().numeric("x");
        for (i, &e) in noise.iter().enumerate() {
            let x = i as f64;
            d.add(&[Value::Num(x)], 1.5 + 0.5 * x + e);
        }
        d
    }

    #[test]
    fn ols_recovers_exact_line() {
        let fit = ols(&line_design(&[0.0; 20])).unwrap();
        assert!((fit.coefficient("(Intercept)").unwrap().estimate - 1.5).abs() < 1e-10);
        assert!((fit.coefficient("x").unwrap().estimate - 0.5).abs() < 1e-11);
        assert!(fit.r_squared > 0.999_999);
        assert!(fit.rmse < 1e-9);
    }

    #[test]
    fn ols_inference_on_noisy_line() {
        // Deterministic "noise" with zero mean.
        let noise: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let fit = ols(&line_design(&noise)).unwrap();
        let slope = fit.coefficient("x").unwrap();
        assert!((slope.estimate - 0.5).abs() < 0.01);
        assert!(slope.std_err > 0.0);
        assert!(slope.p_value < 1e-10, "strong slope must be significant");
        assert!(slope.ci95.0 < slope.estimate && slope.estimate < slope.ci95.1);
    }

    #[test]
    fn categorical_dummy_coding() {
        // y = 1 + 2*[level B] + 5*[level C]
        let mut d = Design::new().intercept().categorical("g", &["A", "B", "C"]);
        for rep in 0..10 {
            let _ = rep;
            d.add(&[Value::Cat(0)], 1.0);
            d.add(&[Value::Cat(1)], 3.0);
            d.add(&[Value::Cat(2)], 6.0);
        }
        let fit = ols(&d).unwrap();
        assert!((fit.coefficient("(Intercept)").unwrap().estimate - 1.0).abs() < 1e-10);
        assert!((fit.coefficient("g: B").unwrap().estimate - 2.0).abs() < 1e-10);
        assert!((fit.coefficient("g: C").unwrap().estimate - 5.0).abs() < 1e-10);
    }

    #[test]
    fn singular_design_is_reported() {
        let mut d = Design::new().intercept().numeric("x").numeric("x2");
        for i in 0..10 {
            let x = i as f64;
            d.add(&[Value::Num(x), Value::Num(2.0 * x)], x);
        }
        assert_eq!(ols(&d).unwrap_err(), FitError::Singular);
    }

    #[test]
    fn too_few_observations() {
        let mut d = Design::new().intercept().numeric("x");
        d.add(&[Value::Num(1.0)], 1.0);
        assert_eq!(ols(&d).unwrap_err(), FitError::TooFewObservations);
    }

    #[test]
    fn predict_matches_fit() {
        let fit = ols(&line_design(&[0.0; 10])).unwrap();
        let pred = fit.predict(&[1.0, 4.0]);
        assert!((pred - (1.5 + 0.5 * 4.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut d = Design::new().intercept().numeric("x");
        d.add(&[], 1.0);
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let mut d = Design::new().numeric("x");
        d.add(&[Value::Cat(0)], 1.0);
    }

    #[test]
    fn mae_and_rmse_consistent() {
        let noise: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 0.2 } else { -0.2 }).collect();
        let fit = ols(&line_design(&noise)).unwrap();
        assert!((fit.mae - 0.2).abs() < 0.05);
        assert!(fit.rmse >= fit.mae); // RMSE dominates MAE
    }
}
