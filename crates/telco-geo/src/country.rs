//! Synthetic country generation.
//!
//! The study's geography — 300+ census districts with heavily skewed
//! population, a capital metropolitan area, three outer regions, and
//! thousands of postcode areas classified urban/rural — is proprietary to
//! the census office and the MNO. This module generates a deterministic
//! stand-in with the same statistical anatomy:
//!
//! * district populations follow a Zipf-like law (a few metropolitan
//!   districts dominate, a long tail of rural ones), with the most populous
//!   district pinned at the geographic centre (the capital);
//! * regions partition the territory into Capital area / North / South /
//!   West, the covariate of the paper's Table 3;
//! * each district splits into postcode areas with a dominant "town"
//!   postcode, classified urban/rural by the 10k-resident census threshold;
//! * the share of territory covered by urban postcodes is calibrated to the
//!   paper's 49.6% (§5.1).

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::coords::{GeoPoint, KmPoint, KmRect, Projection};
use crate::district::{District, DistrictId, Region};
use crate::postcode::{AreaType, Postcode, PostcodeId};

/// Parameters of the synthetic country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryConfig {
    /// RNG seed; every derived structure is a pure function of the config.
    pub seed: u64,
    /// Number of census districts (the paper's country has 300+).
    pub n_districts: usize,
    /// Total resident population.
    pub total_population: u64,
    /// Country extent, km (width, height).
    pub extent_km: (f64, f64),
    /// Zipf exponent for the district population ranking.
    pub zipf_exponent: f64,
    /// Radius of the capital region around the centre, km.
    pub capital_radius_km: f64,
    /// Fraction of territory covered by urban postcodes (paper: 0.496).
    pub urban_area_fraction: f64,
    /// Fraction of postcodes lacking reliable census data (paper: 0.031).
    pub unreliable_census_fraction: f64,
}

impl Default for CountryConfig {
    fn default() -> Self {
        CountryConfig {
            seed: 0x7e1c0,
            n_districts: 312,
            total_population: 10_000_000,
            extent_km: (450.0, 380.0),
            zipf_exponent: 0.95,
            capital_radius_km: 70.0,
            urban_area_fraction: 0.496,
            unreliable_census_fraction: 0.031,
        }
    }
}

impl CountryConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        CountryConfig {
            // Few districts so the 10k urban threshold still splits the
            // country realistically at 1/25th of the full population.
            n_districts: 16,
            total_population: 400_000,
            extent_km: (200.0, 160.0),
            capital_radius_km: 40.0,
            ..Default::default()
        }
    }
}

/// The generated country: districts, postcodes and the map frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    config: CountryConfig,
    /// Geographic projection anchoring the km plane (fictional origin).
    pub projection: Projection,
    /// Country bounding box on the km plane.
    pub bounds: KmRect,
    districts: Vec<District>,
    postcodes: Vec<Postcode>,
}

impl Country {
    /// Generate a country deterministically from its configuration.
    pub fn generate(config: CountryConfig) -> Self {
        assert!(config.n_districts >= 4, "need at least one district per region");
        assert!(config.total_population > 0, "population must be positive");
        assert!(
            (0.0..1.0).contains(&config.urban_area_fraction),
            "urban_area_fraction must be in [0,1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let bounds = KmRect::new(
            KmPoint::new(0.0, 0.0),
            KmPoint::new(config.extent_km.0, config.extent_km.1),
        );
        let center = bounds.center();

        // --- District centroids: jittered grid so they tile the country. ---
        let n = config.n_districts;
        let aspect = bounds.width() / bounds.height();
        let ny = ((n as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = n.div_ceil(ny);
        let cell_w = bounds.width() / nx as f64;
        let cell_h = bounds.height() / ny as f64;
        let mut centroids = Vec::with_capacity(n);
        'outer: for gy in 0..ny {
            for gx in 0..nx {
                if centroids.len() == n {
                    break 'outer;
                }
                let jx: f64 = rng.random_range(0.18..0.82);
                let jy: f64 = rng.random_range(0.18..0.82);
                centroids.push(KmPoint::new(
                    bounds.min.x + (gx as f64 + jx) * cell_w,
                    bounds.min.y + (gy as f64 + jy) * cell_h,
                ));
            }
        }

        // --- Populations: Zipf ranks; capital = centroid nearest centre. ---
        let mut weights: Vec<f64> =
            (1..=n).map(|r| (r as f64).powf(-config.zipf_exponent)).collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        // Order of assignment: nearest-to-centre district gets rank 1 (the
        // capital); remaining ranks are scattered deterministically.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            centroids[a]
                .distance_km(&center)
                .partial_cmp(&centroids[b].distance_km(&center))
                .expect("finite distances")
        });
        let capital_idx = order[0];
        let mut rest: Vec<usize> = order[1..].to_vec();
        // Deterministic shuffle of the non-capital ranks.
        for i in (1..rest.len()).rev() {
            let j = rng.random_range(0..=i);
            rest.swap(i, j);
        }
        let mut populations = vec![0u64; n];
        populations[capital_idx] = (weights[0] * config.total_population as f64).round() as u64;
        for (rank, &idx) in rest.iter().enumerate() {
            populations[idx] =
                ((weights[rank + 1] * config.total_population as f64).round() as u64).max(500);
        }

        // --- Areas: small for dense districts, larger for sparse ones. ---
        let total_area = bounds.area_km2();
        let mut area_weights: Vec<f64> = populations
            .iter()
            .map(|&p| (p as f64 + 1.0).powf(-0.22) * rng.random_range(0.75..1.25))
            .collect();
        let aw_sum: f64 = area_weights.iter().sum();
        for w in &mut area_weights {
            *w *= total_area / aw_sum;
        }

        // --- Regions by geometry. ---
        let regions: Vec<Region> = centroids
            .iter()
            .map(|c| {
                if c.distance_km(&center) <= config.capital_radius_km {
                    Region::Capital
                } else if c.x < bounds.min.x + bounds.width() / 3.0 {
                    Region::West
                } else if c.y >= center.y {
                    Region::North
                } else {
                    Region::South
                }
            })
            .collect();

        // --- Postcodes: dominant town + hinterland per district. ---
        let mut districts = Vec::with_capacity(n);
        let mut postcodes: Vec<Postcode> = Vec::new();
        for i in 0..n {
            let pop = populations[i];
            // Between 2 and 14 postcodes, growing with population.
            let n_pc = (2 + (pop as f64 / 40_000.0).sqrt() as usize).min(14);
            // Population split: the town postcode concentrates most people,
            // and larger districts are more urbanised (the concentration is
            // what puts ~78% of handovers in urban areas, Fig. 7 / §5.1 —
            // population, sites and therefore signaling all follow it).
            let urbanisation = (pop as f64 / 25_000.0).min(1.0) * 0.15;
            let town_share: f64 = rng.random_range(0.62..0.80) + urbanisation;
            let mut pc_pops = vec![0u64; n_pc];
            pc_pops[0] = (pop as f64 * town_share) as u64;
            let mut rest_weights: Vec<f64> =
                (1..n_pc).map(|_| rng.random_range(0.2..1.0f64)).collect();
            let rw_sum: f64 = rest_weights.iter().sum::<f64>().max(1e-9);
            for w in &mut rest_weights {
                *w /= rw_sum;
            }
            let remaining = pop - pc_pops[0];
            for (k, w) in rest_weights.iter().enumerate() {
                pc_pops[k + 1] = (remaining as f64 * w) as u64;
            }
            let radius = (area_weights[i] / std::f64::consts::PI).sqrt();
            let ids: Vec<PostcodeId> = (0..n_pc)
                .map(|k| {
                    let id = PostcodeId(postcodes.len() as u32);
                    let (dx, dy) = if k == 0 {
                        (0.0, 0.0)
                    } else {
                        let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
                        let r: f64 = rng.random_range(0.25..0.9) * radius;
                        (ang.cos() * r, ang.sin() * r)
                    };
                    let centroid =
                        bounds.clamp(&KmPoint::new(centroids[i].x + dx, centroids[i].y + dy));
                    postcodes.push(Postcode {
                        id,
                        district: DistrictId(i as u16),
                        centroid,
                        area_km2: 0.0, // filled after urban/rural calibration
                        population: pc_pops[k],
                        area_type: AreaType::classify(pc_pops[k]),
                        census_reliable: rng.random::<f64>() >= config.unreliable_census_fraction,
                    });
                    id
                })
                .collect();
            districts.push(District {
                id: DistrictId(i as u16),
                name: format!("District {i:03}"),
                region: regions[i],
                centroid: centroids[i],
                area_km2: area_weights[i],
                population: pc_pops.iter().sum(),
                postcodes: ids,
            });
        }

        // --- Calibrate postcode areas to the target urban territory share.
        // Within each class, area is proportional to sqrt(population + 1);
        // across classes, totals are pinned to the configured fraction.
        let urban_total = total_area * config.urban_area_fraction;
        let rural_total = total_area - urban_total;
        let weight = |p: &Postcode| (p.population as f64 + 1.0).sqrt();
        let sum_w = |ty: AreaType, pcs: &[Postcode]| -> f64 {
            pcs.iter().filter(|p| p.area_type == ty).map(weight).sum::<f64>().max(1e-9)
        };
        let uw = sum_w(AreaType::Urban, &postcodes);
        let rw = sum_w(AreaType::Rural, &postcodes);
        for p in &mut postcodes {
            let w = (p.population as f64 + 1.0).sqrt();
            p.area_km2 = match p.area_type {
                AreaType::Urban => urban_total * w / uw,
                AreaType::Rural => rural_total * w / rw,
            };
        }

        let projection = Projection::new(GeoPoint::new(41.0, 1.0));
        Country { config, projection, bounds, districts, postcodes }
    }

    /// The configuration the country was generated from.
    pub fn config(&self) -> &CountryConfig {
        &self.config
    }

    /// All districts, indexed by `DistrictId.0`.
    pub fn districts(&self) -> &[District] {
        &self.districts
    }

    /// All postcodes, indexed by `PostcodeId.0`.
    pub fn postcodes(&self) -> &[Postcode] {
        &self.postcodes
    }

    /// Look up a district.
    pub fn district(&self, id: DistrictId) -> &District {
        &self.districts[id.0 as usize]
    }

    /// Look up a postcode.
    pub fn postcode(&self, id: PostcodeId) -> &Postcode {
        &self.postcodes[id.0 as usize]
    }

    /// The capital district (largest population in the Capital region).
    pub fn capital(&self) -> &District {
        self.districts
            .iter()
            .filter(|d| d.region == Region::Capital)
            .max_by_key(|d| d.population)
            .expect("capital region always has a district")
    }

    /// Total census population.
    pub fn total_population(&self) -> u64 {
        self.districts.iter().map(|d| d.population).sum()
    }

    /// Fraction of the territory covered by urban postcodes.
    pub fn urban_area_fraction(&self) -> f64 {
        let urban: f64 = self
            .postcodes
            .iter()
            .filter(|p| p.area_type == AreaType::Urban)
            .map(|p| p.area_km2)
            .sum();
        urban / self.bounds.area_km2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Country::generate(CountryConfig::tiny());
        let b = Country::generate(CountryConfig::tiny());
        assert_eq!(a.districts(), b.districts());
        assert_eq!(a.postcodes(), b.postcodes());
    }

    #[test]
    fn default_country_shape() {
        let c = Country::generate(CountryConfig::default());
        assert_eq!(c.districts().len(), 312);
        assert!(c.postcodes().len() > 312 * 2 - 1);
        // Every region is represented.
        for r in Region::ALL {
            assert!(c.districts().iter().any(|d| d.region == r), "missing region {r}");
        }
    }

    #[test]
    fn population_is_zipf_skewed_and_capital_is_largest() {
        let c = Country::generate(CountryConfig::default());
        let cap = c.capital();
        let max_pop = c.districts().iter().map(|d| d.population).max().unwrap();
        assert_eq!(cap.population, max_pop, "capital must be the largest district");
        // Top 10% of districts hold a large share of the population.
        let mut pops: Vec<u64> = c.districts().iter().map(|d| d.population).collect();
        pops.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = pops.iter().take(pops.len() / 10).sum();
        let total: u64 = pops.iter().sum();
        assert!(top as f64 / total as f64 > 0.3, "Zipf skew expected");
    }

    #[test]
    fn urban_area_fraction_is_calibrated() {
        let c = Country::generate(CountryConfig::default());
        let f = c.urban_area_fraction();
        assert!((f - 0.496).abs() < 0.01, "urban territory share {f}");
    }

    #[test]
    fn district_population_matches_postcode_sum() {
        let c = Country::generate(CountryConfig::tiny());
        for d in c.districts() {
            let pc_sum: u64 = d.postcodes.iter().map(|&p| c.postcode(p).population).sum();
            assert_eq!(d.population, pc_sum, "district {} inconsistent", d.id);
        }
    }

    #[test]
    fn postcode_centroids_inside_bounds() {
        let c = Country::generate(CountryConfig::default());
        for p in c.postcodes() {
            assert!(c.bounds.contains(&p.centroid), "postcode {} outside map", p.id);
        }
    }

    #[test]
    fn some_census_unreliable_postcodes_exist() {
        let c = Country::generate(CountryConfig::default());
        let unreliable = c.postcodes().iter().filter(|p| !p.census_reliable).count();
        let frac = unreliable as f64 / c.postcodes().len() as f64;
        assert!(frac > 0.005 && frac < 0.08, "unreliable fraction {frac}");
    }

    #[test]
    fn areas_sum_to_country_area() {
        let c = Country::generate(CountryConfig::tiny());
        let pc_area: f64 = c.postcodes().iter().map(|p| p.area_km2).sum();
        assert!((pc_area - c.bounds.area_km2()).abs() / c.bounds.area_km2() < 1e-9);
        let d_area: f64 = c.districts().iter().map(|d| d.area_km2).sum();
        assert!((d_area - c.bounds.area_km2()).abs() / c.bounds.area_km2() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Country::generate(CountryConfig::tiny());
        let mut cfg = CountryConfig::tiny();
        cfg.seed = 999;
        let b = Country::generate(cfg);
        assert_ne!(a.districts()[0].population, b.districts()[0].population);
    }
}
