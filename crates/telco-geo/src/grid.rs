//! A uniform spatial hash grid over the km plane.
//!
//! Used for nearest-sector queries during simulation (which sector serves a
//! UE at a given position) and for neighbor-list construction in the
//! topology crate. Queries expand ring-by-ring, so nearest-neighbour cost is
//! proportional to local point density, not to the total count.

use crate::coords::{KmPoint, KmRect};

/// A spatial index mapping points to payloads of type `T`.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bounds: KmRect,
    cell_km: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<(KmPoint, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Create an index over `bounds` with square cells of side `cell_km`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_km <= 0`.
    pub fn new(bounds: KmRect, cell_km: f64) -> Self {
        assert!(cell_km > 0.0, "cell size must be positive");
        let nx = (bounds.width() / cell_km).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell_km).ceil().max(1.0) as usize;
        GridIndex { bounds, cell_km, nx, ny, cells: vec![Vec::new(); nx * ny], len: 0 }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: &KmPoint) -> (usize, usize) {
        let p = self.bounds.clamp(p);
        let cx = ((p.x - self.bounds.min.x) / self.cell_km) as usize;
        let cy = ((p.y - self.bounds.min.y) / self.cell_km) as usize;
        (cx.min(self.nx - 1), cy.min(self.ny - 1))
    }

    /// Insert a point with its payload. Points outside the bounds are
    /// clamped into the border cells.
    pub fn insert(&mut self, p: KmPoint, value: T) {
        let (cx, cy) = self.cell_of(&p);
        self.cells[cy * self.nx + cx].push((p, value));
        self.len += 1;
    }

    /// All `(point, payload)` pairs within `radius_km` of `center`.
    pub fn within_radius(&self, center: &KmPoint, radius_km: f64) -> Vec<(KmPoint, &T)> {
        let mut out = Vec::new();
        let (ccx, ccy) = self.cell_of(center);
        let r_cells = (radius_km / self.cell_km).ceil() as isize + 1;
        let radius2 = radius_km * radius_km;
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let cx = ccx as isize + dx;
                let cy = ccy as isize + dy;
                if cx < 0 || cy < 0 || cx >= self.nx as isize || cy >= self.ny as isize {
                    continue;
                }
                for (p, v) in &self.cells[cy as usize * self.nx + cx as usize] {
                    if dist2(p, center) <= radius2 {
                        out.push((*p, v));
                    }
                }
            }
        }
        out
    }

    /// The nearest point to `center`, or `None` if the index is empty.
    ///
    /// Searches outward in rings of cells, stopping once the closest found
    /// point is provably nearer than any unexplored ring.
    pub fn nearest(&self, center: &KmPoint) -> Option<(KmPoint, &T)> {
        if self.len == 0 {
            return None;
        }
        let (ccx, ccy) = self.cell_of(center);
        let max_ring = self.nx.max(self.ny) as isize;
        // Track *squared* distances: strictly monotone in the true
        // distance, so the winner is identical but no point costs a sqrt.
        let mut best: Option<(f64, KmPoint, &T)> = None;
        for ring in 0..=max_ring {
            // Once we have a candidate, stop when the ring's minimum possible
            // distance exceeds it.
            if let Some((d2, _, _)) = best {
                let ring_min = (ring - 1).max(0) as f64 * self.cell_km;
                if ring_min * ring_min > d2 {
                    break;
                }
            }
            let mut visited_any = false;
            for (cx, cy) in ring_cells(ccx as isize, ccy as isize, ring) {
                if cx < 0 || cy < 0 || cx >= self.nx as isize || cy >= self.ny as isize {
                    continue;
                }
                visited_any = true;
                for (p, v) in &self.cells[cy as usize * self.nx + cx as usize] {
                    let d2 = dist2(p, center);
                    if best.as_ref().is_none_or(|(bd2, _, _)| d2 < *bd2) {
                        best = Some((d2, *p, v));
                    }
                }
            }
            if !visited_any && best.is_some() {
                break;
            }
        }
        best.map(|(_, p, v)| (p, v))
    }

    /// The `k` nearest points to `center`, closest first.
    pub fn k_nearest(&self, center: &KmPoint, k: usize) -> Vec<(KmPoint, &T)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Expand the radius until enough neighbours are collected, then sort.
        let mut radius = self.cell_km;
        let diag = (self.bounds.width().powi(2) + self.bounds.height().powi(2)).sqrt();
        loop {
            let mut found = self.within_radius(center, radius);
            if found.len() >= k || radius > diag {
                found.sort_by(|a, b| {
                    a.0.distance_km(center)
                        .partial_cmp(&b.0.distance_km(center))
                        .expect("distances are finite")
                });
                found.truncate(k);
                return found;
            }
            radius *= 2.0;
        }
    }
}

/// Squared Euclidean distance — spares the sqrt when only ordering matters.
fn dist2(a: &KmPoint, b: &KmPoint) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    dx * dx + dy * dy
}

/// Cells at Chebyshev distance exactly `ring` from `(cx, cy)`.
fn ring_cells(cx: isize, cy: isize, ring: isize) -> impl Iterator<Item = (isize, isize)> {
    // Lazy so nearest-neighbour queries (the simulation hot path) never
    // allocate. For ring 0 the top and bottom rows coincide; emit one.
    let top_bottom = (-ring..=ring).flat_map(move |d| {
        let top = Some((cx + d, cy - ring));
        let bottom = (ring > 0).then_some((cx + d, cy + ring));
        [top, bottom].into_iter().flatten()
    });
    let sides = ((-ring + 1)..ring).flat_map(move |d| [(cx - ring, cy + d), (cx + ring, cy + d)]);
    top_bottom.chain(sides)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> KmRect {
        KmRect::new(KmPoint::new(0.0, 0.0), KmPoint::new(100.0, 100.0))
    }

    #[test]
    fn nearest_on_regular_lattice() {
        let mut g = GridIndex::new(bounds(), 5.0);
        for x in 0..10 {
            for y in 0..10 {
                g.insert(KmPoint::new(x as f64 * 10.0, y as f64 * 10.0), (x, y));
            }
        }
        let (_, v) = g.nearest(&KmPoint::new(42.0, 38.0)).unwrap();
        assert_eq!(*v, (4, 4));
        let (_, v) = g.nearest(&KmPoint::new(1.0, 99.0)).unwrap();
        assert_eq!(*v, (0, 9));
    }

    #[test]
    fn nearest_empty_is_none() {
        let g: GridIndex<u8> = GridIndex::new(bounds(), 10.0);
        assert!(g.nearest(&KmPoint::new(0.0, 0.0)).is_none());
        assert!(g.is_empty());
    }

    #[test]
    fn within_radius_counts() {
        let mut g = GridIndex::new(bounds(), 10.0);
        g.insert(KmPoint::new(50.0, 50.0), 'a');
        g.insert(KmPoint::new(53.0, 50.0), 'b');
        g.insert(KmPoint::new(80.0, 80.0), 'c');
        let hits = g.within_radius(&KmPoint::new(50.0, 50.0), 5.0);
        assert_eq!(hits.len(), 2);
        let hits = g.within_radius(&KmPoint::new(50.0, 50.0), 100.0);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn k_nearest_sorted() {
        let mut g = GridIndex::new(bounds(), 10.0);
        for i in 0..5 {
            g.insert(KmPoint::new(i as f64 * 10.0, 0.0), i);
        }
        let knn = g.k_nearest(&KmPoint::new(0.0, 0.0), 3);
        let vals: Vec<i32> = knn.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn k_nearest_more_than_available() {
        let mut g = GridIndex::new(bounds(), 10.0);
        g.insert(KmPoint::new(1.0, 1.0), 1);
        let knn = g.k_nearest(&KmPoint::new(0.0, 0.0), 5);
        assert_eq!(knn.len(), 1);
    }

    #[test]
    fn points_outside_bounds_are_clamped() {
        let mut g = GridIndex::new(bounds(), 10.0);
        g.insert(KmPoint::new(-50.0, -50.0), 'x');
        assert_eq!(g.len(), 1);
        assert!(g.nearest(&KmPoint::new(0.0, 0.0)).is_some());
    }

    #[test]
    fn nearest_is_exact_against_brute_force() {
        let mut g = GridIndex::new(bounds(), 7.0);
        // Deterministic pseudo-random points.
        let mut pts = Vec::new();
        let mut s: u64 = 12345;
        for i in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (s >> 33) as f64 % 100.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = (s >> 33) as f64 % 100.0;
            pts.push(KmPoint::new(x, y));
            g.insert(KmPoint::new(x, y), i);
        }
        for q in [KmPoint::new(3.0, 97.0), KmPoint::new(50.0, 50.0), KmPoint::new(99.0, 1.0)] {
            let (_, got) = g.nearest(&q).unwrap();
            let brute = pts
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.distance_km(&q).partial_cmp(&b.1.distance_km(&q)).unwrap())
                .unwrap()
                .0;
            assert_eq!(*got, brute);
        }
    }
}
