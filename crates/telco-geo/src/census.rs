//! The open census dataset, as the "census office" would publish it.
//!
//! The paper joins MNO data with open census records at the district level
//! (§3.2): population, area and postcode membership. `CensusTable` is that
//! publication — a view over a generated [`crate::country::Country`]
//! that deliberately excludes everything the census office would not know
//! (deployment, traffic, device mix).

use serde::{Deserialize, Serialize};

use crate::country::Country;
use crate::district::{DistrictId, Region};
use crate::postcode::{AreaType, PostcodeId};

/// One row of the published census table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusRow {
    /// District identifier.
    pub district: DistrictId,
    /// Region label.
    pub region: Region,
    /// Resident population.
    pub population: u64,
    /// Land area, km².
    pub area_km2: f64,
    /// Residents per km².
    pub density: f64,
    /// Postcodes within the district.
    pub postcodes: Vec<PostcodeId>,
}

/// The census office's open dataset: district demographics plus the
/// postcode-level urban/rural classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusTable {
    rows: Vec<CensusRow>,
    /// `(postcode, population, area_type, reliable)` classification records.
    postcode_class: Vec<(PostcodeId, u64, AreaType, bool)>,
}

impl CensusTable {
    /// Publish the census view of a country.
    pub fn publish(country: &Country) -> Self {
        let rows = country
            .districts()
            .iter()
            .map(|d| CensusRow {
                district: d.id,
                region: d.region,
                population: d.population,
                area_km2: d.area_km2,
                density: d.population_density(),
                postcodes: d.postcodes.clone(),
            })
            .collect();
        let postcode_class = country
            .postcodes()
            .iter()
            .map(|p| (p.id, p.population, p.area_type, p.census_reliable))
            .collect();
        CensusTable { rows, postcode_class }
    }

    /// District rows.
    pub fn rows(&self) -> &[CensusRow] {
        &self.rows
    }

    /// Row for a district.
    pub fn row(&self, id: DistrictId) -> &CensusRow {
        &self.rows[id.0 as usize]
    }

    /// Urban/rural classification for a postcode.
    pub fn area_type(&self, id: PostcodeId) -> AreaType {
        self.postcode_class[id.0 as usize].2
    }

    /// Whether a postcode has reliable census data.
    pub fn is_reliable(&self, id: PostcodeId) -> bool {
        self.postcode_class[id.0 as usize].3
    }

    /// Total population across all districts.
    pub fn total_population(&self) -> u64 {
        self.rows.iter().map(|r| r.population).sum()
    }

    /// Districts sorted by ascending population density.
    pub fn by_density(&self) -> Vec<&CensusRow> {
        let mut v: Vec<&CensusRow> = self.rows.iter().collect();
        v.sort_by(|a, b| a.density.partial_cmp(&b.density).expect("finite densities"));
        v
    }

    /// The least densely populated `fraction` of districts (e.g. the
    /// paper's "6% least densely populated districts", §5.2).
    pub fn least_dense(&self, fraction: f64) -> Vec<&CensusRow> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let sorted = self.by_density();
        let k = ((sorted.len() as f64 * fraction).ceil() as usize).min(sorted.len());
        sorted.into_iter().take(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::CountryConfig;

    fn table() -> CensusTable {
        CensusTable::publish(&Country::generate(CountryConfig::tiny()))
    }

    #[test]
    fn publish_covers_all_districts() {
        let c = Country::generate(CountryConfig::tiny());
        let t = CensusTable::publish(&c);
        assert_eq!(t.rows().len(), c.districts().len());
        assert_eq!(t.total_population(), c.total_population());
    }

    #[test]
    fn by_density_is_sorted() {
        let t = table();
        let d = t.by_density();
        assert!(d.windows(2).all(|w| w[0].density <= w[1].density));
    }

    #[test]
    fn least_dense_selects_fraction() {
        let t = table();
        let k = t.least_dense(0.25).len();
        assert_eq!(k, (t.rows().len() as f64 * 0.25).ceil() as usize);
        // The selected districts are the least dense ones.
        let max_sel = t.least_dense(0.25).iter().map(|r| r.density).fold(0.0f64, f64::max);
        let min_rest =
            t.by_density().into_iter().skip(k).map(|r| r.density).fold(f64::INFINITY, f64::min);
        assert!(max_sel <= min_rest);
    }

    #[test]
    fn area_type_lookup_matches_country() {
        let c = Country::generate(CountryConfig::tiny());
        let t = CensusTable::publish(&c);
        for p in c.postcodes() {
            assert_eq!(t.area_type(p.id), p.area_type);
            assert_eq!(t.is_reliable(p.id), p.census_reliable);
        }
    }
}
