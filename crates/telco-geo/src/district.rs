//! Administrative geography: districts and regions.
//!
//! The paper aggregates everything at the level of the 300+ districts
//! defined by the country's census office, and its regression models use a
//! coarser `Sector Region` covariate with four values (West, South, North,
//! Capital area — Table 3).

use serde::{Deserialize, Serialize};

use crate::coords::KmPoint;
use crate::postcode::PostcodeId;

/// Identifier of a census district.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DistrictId(pub u16);

impl std::fmt::Display for DistrictId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{:03}", self.0)
    }
}

/// The four coarse regions used as a regression covariate (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// The capital metropolitan area.
    Capital,
    /// Northern part of the country.
    North,
    /// Southern part of the country.
    South,
    /// Western part of the country.
    West,
}

impl Region {
    /// All regions in declaration order.
    pub const ALL: [Region; 4] = [Region::Capital, Region::North, Region::South, Region::West];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::Capital => "Capital area",
            Region::North => "North",
            Region::South => "South",
            Region::West => "West",
        }
    }

    /// Stable small index, usable as a categorical level.
    pub fn index(&self) -> usize {
        match self {
            Region::Capital => 0,
            Region::North => 1,
            Region::South => 2,
            Region::West => 3,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A census district: the unit of the paper's geodemographic analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct District {
    /// Identifier (index into the country's district table).
    pub id: DistrictId,
    /// Synthetic name, e.g. `"District 042"`.
    pub name: String,
    /// Coarse region the district belongs to.
    pub region: Region,
    /// Centroid on the country's km plane.
    pub centroid: KmPoint,
    /// Land area in km².
    pub area_km2: f64,
    /// Census resident population.
    pub population: u64,
    /// Postcode areas contained in the district.
    pub postcodes: Vec<PostcodeId>,
}

impl District {
    /// Residents per km².
    pub fn population_density(&self) -> f64 {
        self.population as f64 / self.area_km2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_names_and_indices_are_stable() {
        assert_eq!(Region::Capital.name(), "Capital area");
        assert_eq!(Region::West.to_string(), "West");
        let idx: Vec<usize> = Region::ALL.iter().map(Region::index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn district_density() {
        let d = District {
            id: DistrictId(1),
            name: "District 001".into(),
            region: Region::North,
            centroid: KmPoint::new(0.0, 0.0),
            area_km2: 50.0,
            population: 100_000,
            postcodes: vec![],
        };
        assert_eq!(d.population_density(), 2000.0);
        assert_eq!(d.id.to_string(), "D001");
    }
}
