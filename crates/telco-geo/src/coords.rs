//! Geographic coordinates, great-circle distance, and a local planar
//! projection used by the deployment and mobility layers.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6_371.008_8;

/// A WGS84-style geographic point (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Construct a point, validating the coordinate ranges.
    ///
    /// # Panics
    ///
    /// Panics when latitude is outside `[-90, 90]` or longitude outside
    /// `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        assert!((-180.0..=180.0).contains(&lon), "longitude out of range: {lon}");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to another point in kilometres (haversine).
    pub fn haversine_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// A point on the local kilometre plane of a [`Projection`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KmPoint {
    /// East offset from the projection origin, km.
    pub x: f64,
    /// North offset from the projection origin, km.
    pub y: f64,
}

impl KmPoint {
    /// Construct a planar point.
    pub fn new(x: f64, y: f64) -> Self {
        KmPoint { x, y }
    }

    /// Euclidean distance to another planar point, km.
    pub fn distance_km(&self, other: &KmPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Equirectangular projection around a reference point — accurate to well
/// under 1% over the few-hundred-km extent of the synthetic country, and
/// exactly invertible, which the generators rely on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    origin: GeoPoint,
    cos_lat: f64,
}

impl Projection {
    /// Projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        Projection { origin, cos_lat: origin.lat.to_radians().cos() }
    }

    /// The reference point.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Project a geographic point onto the local km plane.
    pub fn to_km(&self, p: &GeoPoint) -> KmPoint {
        let deg_to_km = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        KmPoint {
            x: (p.lon - self.origin.lon) * deg_to_km * self.cos_lat,
            y: (p.lat - self.origin.lat) * deg_to_km,
        }
    }

    /// Inverse projection from the local km plane.
    pub fn to_geo(&self, p: &KmPoint) -> GeoPoint {
        let km_to_deg = 180.0 / (EARTH_RADIUS_KM * std::f64::consts::PI);
        GeoPoint {
            lat: self.origin.lat + p.y * km_to_deg,
            lon: self.origin.lon + p.x * km_to_deg / self.cos_lat,
        }
    }
}

/// An axis-aligned rectangle on the km plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KmRect {
    /// Minimum corner.
    pub min: KmPoint,
    /// Maximum corner.
    pub max: KmPoint,
}

impl KmRect {
    /// Construct from corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` exceeds `max` on either axis.
    pub fn new(min: KmPoint, max: KmPoint) -> Self {
        assert!(min.x <= max.x && min.y <= max.y, "degenerate rectangle");
        KmRect { min, max }
    }

    /// Width in km.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in km.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in km².
    pub fn area_km2(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    pub fn center(&self) -> KmPoint {
        KmPoint::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }

    /// Whether the rectangle contains a point (inclusive bounds).
    pub fn contains(&self, p: &KmPoint) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp a point into the rectangle.
    pub fn clamp(&self, p: &KmPoint) -> KmPoint {
        KmPoint::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // Madrid (40.4168, -3.7038) to Barcelona (41.3874, 2.1686): ~505 km.
        let mad = GeoPoint::new(40.4168, -3.7038);
        let bcn = GeoPoint::new(41.3874, 2.1686);
        let d = mad.haversine_km(&bcn);
        assert!((d - 505.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn haversine_zero_and_symmetry() {
        let a = GeoPoint::new(41.0, 2.0);
        let b = GeoPoint::new(42.0, 3.0);
        assert_eq!(a.haversine_km(&a), 0.0);
        assert!((a.haversine_km(&b) - b.haversine_km(&a)).abs() < 1e-12);
    }

    #[test]
    fn projection_roundtrip() {
        let proj = Projection::new(GeoPoint::new(41.0, 2.0));
        let p = GeoPoint::new(41.7, 2.9);
        let km = proj.to_km(&p);
        let back = proj.to_geo(&km);
        assert!((back.lat - p.lat).abs() < 1e-12);
        assert!((back.lon - p.lon).abs() < 1e-12);
    }

    #[test]
    fn projection_matches_haversine_locally() {
        let proj = Projection::new(GeoPoint::new(41.0, 2.0));
        let a = GeoPoint::new(41.1, 2.1);
        let b = GeoPoint::new(41.3, 2.4);
        let planar = proj.to_km(&a).distance_km(&proj.to_km(&b));
        let sphere = a.haversine_km(&b);
        assert!((planar - sphere).abs() / sphere < 0.01, "planar {planar} vs sphere {sphere}");
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = KmRect::new(KmPoint::new(0.0, 0.0), KmPoint::new(10.0, 5.0));
        assert!(r.contains(&KmPoint::new(5.0, 2.0)));
        assert!(!r.contains(&KmPoint::new(11.0, 2.0)));
        let c = r.clamp(&KmPoint::new(20.0, -3.0));
        assert_eq!(c, KmPoint::new(10.0, 0.0));
        assert_eq!(r.area_km2(), 50.0);
        assert_eq!(r.center(), KmPoint::new(5.0, 2.5));
    }

    #[test]
    #[should_panic]
    fn geo_point_rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }
}
