//! # telco-geo
//!
//! Geography substrate for the handover study: coordinates and a local km
//! projection, census districts and postcode areas with the paper's
//! urban/rural classification, a deterministic synthetic-country generator,
//! and a spatial grid index for nearest-sector queries.
//!
//! ## Example
//!
//! ```
//! use telco_geo::country::{Country, CountryConfig};
//! use telco_geo::census::CensusTable;
//!
//! let country = Country::generate(CountryConfig::tiny());
//! let census = CensusTable::publish(&country);
//! assert_eq!(census.rows().len(), country.districts().len());
//! let cap = country.capital();
//! assert!(cap.population_density() > 0.0);
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod coords;
pub mod country;
pub mod district;
pub mod grid;
pub mod postcode;

pub use census::{CensusRow, CensusTable};
pub use coords::{GeoPoint, KmPoint, KmRect, Projection};
pub use country::{Country, CountryConfig};
pub use district::{District, DistrictId, Region};
pub use grid::GridIndex;
pub use postcode::{AreaType, Postcode, PostcodeId, URBAN_POPULATION_THRESHOLD};
