//! Postcode areas and the urban/rural classification.
//!
//! The paper classifies postcode areas into *urban* and *rural* using
//! census population (more / less than 10k residents, §3.2), and uses the
//! classification both as a demographic segmentation and as a proxy for
//! denser/sparser RAN deployments.

use serde::{Deserialize, Serialize};

use crate::coords::KmPoint;
use crate::district::DistrictId;

/// Identifier of a postcode area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PostcodeId(pub u32);

impl std::fmt::Display for PostcodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:05}", self.0)
    }
}

/// Urban/rural classification of a postcode area (§3.2: 10k-resident
/// threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AreaType {
    /// More than [`URBAN_POPULATION_THRESHOLD`] residents.
    Urban,
    /// At most [`URBAN_POPULATION_THRESHOLD`] residents.
    Rural,
}

impl AreaType {
    /// Classify a postcode population per the paper's threshold.
    pub fn classify(population: u64) -> AreaType {
        if population > URBAN_POPULATION_THRESHOLD {
            AreaType::Urban
        } else {
            AreaType::Rural
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            AreaType::Urban => "Urban",
            AreaType::Rural => "Rural",
        }
    }

    /// Stable index for categorical encodings (Urban = 0, Rural = 1).
    pub fn index(&self) -> usize {
        match self {
            AreaType::Urban => 0,
            AreaType::Rural => 1,
        }
    }
}

impl std::fmt::Display for AreaType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The census population above which a postcode counts as urban (§3.2).
pub const URBAN_POPULATION_THRESHOLD: u64 = 10_000;

/// A postcode area: the finest geographic unit of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Postcode {
    /// Identifier (index into the country's postcode table).
    pub id: PostcodeId,
    /// District containing this postcode.
    pub district: DistrictId,
    /// Centroid on the country's km plane.
    pub centroid: KmPoint,
    /// Land area in km².
    pub area_km2: f64,
    /// Census resident population.
    pub population: u64,
    /// Urban/rural classification (derived from `population`).
    pub area_type: AreaType,
    /// Whether reliable census information exists; the paper drops 3.1% of
    /// postcodes from the geo-temporal analysis for lacking it (§5.1).
    pub census_reliable: bool,
}

impl Postcode {
    /// Residents per km².
    pub fn population_density(&self) -> f64 {
        self.population as f64 / self.area_km2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_threshold() {
        assert_eq!(AreaType::classify(10_001), AreaType::Urban);
        assert_eq!(AreaType::classify(10_000), AreaType::Rural);
        assert_eq!(AreaType::classify(0), AreaType::Rural);
    }

    #[test]
    fn names_and_indices() {
        assert_eq!(AreaType::Urban.name(), "Urban");
        assert_eq!(AreaType::Rural.to_string(), "Rural");
        assert_eq!(AreaType::Urban.index(), 0);
        assert_eq!(AreaType::Rural.index(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(PostcodeId(42).to_string(), "P00042");
    }
}
