//! # telco-bench
//!
//! Shared fixtures for the Criterion benchmark harness. The benches
//! regenerate every table and figure of the paper against a pre-simulated
//! study (`benches/experiments.rs`) and measure the hot kernels of the
//! pipeline (`benches/kernels.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use telco_analytics::Study;
use telco_sim::SimConfig;

/// The benchmark study: a one-week, 2k-UE run shared by every benchmark
/// (simulated once per process).
pub fn bench_study() -> &'static Study {
    static CELL: OnceLock<Study> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 2_000;
        cfg.n_days = 7;
        cfg.threads = 0;
        Study::run(cfg)
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_builds() {
        assert!(super::bench_study().data().trace.len() > 1000);
    }
}
