//! One benchmark per table and figure of the paper: each measures the
//! analysis that regenerates it from a pre-simulated study (the
//! simulation itself is benchmarked separately in `kernels.rs`).
//!
//! Run a single experiment with e.g.
//! `cargo bench -p telco-bench -- t2_ho_types`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use telco_analytics::modeling::{HofModels, ModelingOptions};
use telco_bench::bench_study;

fn bench_tables(c: &mut Criterion) {
    let study = bench_study();
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("t1_dataset_stats", |b| b.iter(|| black_box(study.dataset_stats())));
    g.bench_function("t2_ho_types", |b| b.iter(|| black_box(study.ho_types())));
    // Tables 3–9 all hang off the §6.3 modeling pipeline; Table 3 is the
    // covariate declaration (free), the rest share the sector frame.
    g.bench_function("t4_t9_hof_models", |b| {
        b.iter(|| black_box(HofModels::compute(study.period_frame(), ModelingOptions::default())))
    });
    g.bench_function("t6_frame_build", |b| {
        b.iter(|| {
            black_box(telco_analytics::SectorDayFrame::build_windowed(
                study.data(),
                study.data().config.n_days,
            ))
        })
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let study = bench_study();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("f3a_deployment_evolution", |b| {
        b.iter(|| black_box(study.deployment_evolution()))
    });
    g.bench_function("f3b_rat_usage", |b| b.iter(|| black_box(study.rat_usage())));
    g.bench_function("f4_device_mix", |b| b.iter(|| black_box(study.device_mix())));
    g.bench_function("f5_population_inference", |b| {
        b.iter(|| black_box(study.population_inference()))
    });
    g.bench_function("f6_ho_density", |b| b.iter(|| black_box(study.ho_density())));
    g.bench_function("f7_temporal_evolution", |b| b.iter(|| black_box(study.temporal_evolution())));
    g.bench_function("f8_durations", |b| b.iter(|| black_box(study.durations())));
    g.bench_function("f9_district_distribution", |b| {
        b.iter(|| black_box(study.district_distribution()))
    });
    g.bench_function("f10_mobility_ecdfs", |b| b.iter(|| black_box(study.mobility())));
    g.bench_function("f11_manufacturer_impact", |b| {
        b.iter(|| black_box(study.manufacturer_impact()))
    });
    g.bench_function("f12_hof_patterns", |b| b.iter(|| black_box(study.hof_patterns())));
    g.bench_function("f13_hof_vs_mobility", |b| b.iter(|| black_box(study.hof_vs_mobility())));
    g.bench_function("f14_f15_causes", |b| b.iter(|| black_box(study.causes())));
    // Fig. 16 is produced inside the models bench above; Figs. 17–18:
    g.bench_function("f17_f18_vendor_analysis", |b| b.iter(|| black_box(study.vendor_analysis())));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
