//! Kernel benchmarks: the hot paths of the simulation and statistics
//! pipeline — UE-day simulation throughput, the handover state machine,
//! the trace codec, spatial queries, and the regression/ANOVA kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use telco_bench::bench_study;
use telco_sim::{simulate_ue_day, SimConfig, SimOutput, SimScratch, World};
use telco_stats::anova::one_way_anova;
use telco_stats::ecdf::Ecdf;
use telco_stats::regression::{ols, Design, Value};
use telco_trace::io::{decode, encode};

fn bench_simulation(c: &mut Criterion) {
    let cfg = SimConfig::tiny();
    let world = World::build(&cfg);
    let mut g = c.benchmark_group("simulation");
    g.throughput(Throughput::Elements(64));
    g.bench_function("ue_days_64", |b| {
        let mut scratch = SimScratch::new();
        b.iter(|| {
            let mut out = SimOutput::new(cfg.n_days);
            for ue in 0..64u32 {
                simulate_ue_day(
                    &world,
                    &cfg,
                    telco_devices::population::UeId(ue),
                    0,
                    &mut scratch,
                    &mut out,
                );
            }
            black_box(out.dataset.len())
        })
    });
    g.finish();

    c.bench_function("world_build_tiny", |b| {
        b.iter(|| black_box(World::build(&SimConfig::tiny())))
    });
}

fn bench_state_machine(c: &mut Criterion) {
    use telco_signaling::causes::{CauseCode, PrincipalCause};
    use telco_signaling::messages::HoType;
    use telco_signaling::state_machine::execute;
    let mut g = c.benchmark_group("state_machine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("intra_success", |b| {
        b.iter(|| black_box(execute(HoType::Intra4g5g, false, None, 43.0)))
    });
    g.bench_function("srvcc_failure", |b| {
        b.iter(|| {
            black_box(execute(
                HoType::To3g,
                true,
                Some(CauseCode::principal(PrincipalCause::SrvccPsToCsFailure)),
                380.0,
            ))
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let dataset = bench_study().data().trace.as_dataset().expect("in-memory study");
    let encoded = encode(dataset);
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(encode(dataset))));
    g.bench_function("decode", |b| b.iter(|| black_box(decode(encoded.clone()).unwrap())));
    g.finish();
}

fn bench_spatial(c: &mut Criterion) {
    let study = bench_study();
    let topo = &study.data().world.topology;
    let bounds = study.data().world.country.bounds;
    let mut g = c.benchmark_group("spatial");
    g.throughput(Throughput::Elements(100));
    g.bench_function("serving_sector_100", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..100 {
                let x = bounds.min.x + bounds.width() * (i as f64 / 100.0);
                let y = bounds.min.y + bounds.height() * ((i * 37 % 100) as f64 / 100.0);
                if let Some(s) = topo.serving_sector(
                    &telco_geo::coords::KmPoint::new(x, y),
                    telco_topology::rat::Rat::G4,
                ) {
                    acc = acc.wrapping_add(s.0);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    // OLS on a 10k × 6 design.
    let mut design =
        Design::new().intercept().numeric("x1").numeric("x2").categorical("g", &["a", "b", "c"]);
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for i in 0..10_000 {
        let x1 = next();
        let x2 = next();
        let g = i % 3;
        design.add(
            &[Value::Num(x1), Value::Num(x2), Value::Cat(g)],
            1.0 + 2.0 * x1 - x2 + g as f64 * 0.5 + (next() - 0.5) * 0.1,
        );
    }
    let mut group = c.benchmark_group("stats");
    group.sample_size(30);
    group.bench_function("ols_10k_x5", |b| b.iter(|| black_box(ols(&design).unwrap())));

    let g1: Vec<f64> = (0..5000).map(|i| (i % 97) as f64).collect();
    let g2: Vec<f64> = (0..5000).map(|i| (i % 89) as f64 + 5.0).collect();
    let g3: Vec<f64> = (0..5000).map(|i| (i % 83) as f64 + 10.0).collect();
    group.bench_function("anova_3x5k", |b| {
        b.iter(|| black_box(one_way_anova(&[&g1, &g2, &g3]).unwrap()))
    });
    group.bench_function("ecdf_build_5k", |b| b.iter(|| black_box(Ecdf::new(&g1))));
    group.finish();
}

criterion_group!(
    kernels,
    bench_simulation,
    bench_state_machine,
    bench_codec,
    bench_spatial,
    bench_stats
);
criterion_main!(kernels);
