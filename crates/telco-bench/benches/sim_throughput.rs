//! End-to-end runner throughput: UE-days per second through
//! `run_on_world` for the tiny and small presets at 1, 2, and all
//! available threads. This is the bench that guards the work-stealing
//! scheduler — the kernel benches measure a single UE-day, this one
//! measures scheduling, merge, and scaling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use telco_sim::{run_on_world, RunnerMode, SimConfig, World};

fn preset(name: &str) -> SimConfig {
    match name {
        "tiny" => SimConfig::tiny(),
        "small" => SimConfig::small(),
        other => panic!("unknown preset {other}"),
    }
}

fn bench_runner(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for preset_name in ["tiny", "small"] {
        let base = preset(preset_name);
        let world = World::build(&base);
        let ue_days = base.n_ues as u64 * base.n_days as u64;

        let mut g = c.benchmark_group(format!("sim_throughput/{preset_name}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(ue_days));
        let mut thread_counts = vec![1usize, 2];
        if max_threads > 2 {
            thread_counts.push(max_threads);
        }
        for threads in thread_counts {
            let mut cfg = base.clone();
            cfg.threads = threads;
            g.bench_function(&format!("threads_{threads}"), |b| {
                b.iter(|| {
                    let out = run_on_world(&world, &cfg);
                    // Make sure we measured the path we meant to.
                    if threads > 1 {
                        assert_eq!(out.runner.mode, RunnerMode::WorkStealing);
                    }
                    black_box(out.dataset.len())
                })
            });
        }
        g.finish();
    }
}

criterion_group!(sim_throughput, bench_runner);
criterion_main!(sim_throughput);
