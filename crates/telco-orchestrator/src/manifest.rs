//! The sharded-sweep manifest: a study decomposed into `(day-range,
//! UE-shard, seed, scenario)` work items.
//!
//! The manifest is the orchestration's single source of truth: the full
//! [`SimConfig`] is embedded (a shard is a pure function of config +
//! entry, nothing else), and every entry carries the coordinates a
//! worker needs to run [`telco_sim::run_shard`]. It is stored as JSON in
//! the shard store and re-read on every invocation — resumability means
//! a second orchestrator must reconstruct exactly the same plan, so the
//! plan lives on disk, not in code.
//!
//! Entries are ordered canonically: day-slice-major, then ascending UE
//! range. That order *is* the determinism argument — shard files merged
//! in entry order tie-break equal timestamps in (day, UE) order, which
//! is precisely the sequential runner's insertion order (see
//! `DESIGN.md` §10).

use serde::{Deserialize, Serialize};
use telco_sim::SimConfig;

/// Manifest schema version. Parsers tolerate unknown *fields* (forward
/// compatibility); an unknown *format* number is a hard error.
pub const MANIFEST_FORMAT: u32 = 1;

/// Store name of the manifest artifact.
pub const MANIFEST_NAME: &str = "manifest.json";

/// One work item: simulate UEs `[ue_lo, ue_hi)` over study days
/// `[day_lo, day_hi)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Position in the canonical entry order (also the shard artifact
    /// index).
    pub index: usize,
    /// First study day of the slice (inclusive).
    pub day_lo: u32,
    /// Last study day of the slice (exclusive).
    pub day_hi: u32,
    /// First UE of the shard (inclusive).
    pub ue_lo: usize,
    /// Last UE of the shard (exclusive).
    pub ue_hi: usize,
    /// Master seed the shard derives its per-UE-day streams from
    /// (denormalized from the config so an entry is self-describing).
    pub seed: u64,
    /// Scenario label (denormalized from the manifest).
    pub scenario: String,
}

/// The full sharded-sweep plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Human-readable scenario label (e.g. the preset name).
    pub scenario: String,
    /// Trace-store version shard files are written as (2 or 3).
    pub trace_version: u16,
    /// The complete simulation configuration. Shards are pure functions
    /// of this plus their entry coordinates.
    pub config: SimConfig,
    /// Work items in canonical (day-slice-major, UE-ascending) order.
    pub entries: Vec<ShardEntry>,
}

/// Knobs of [`Manifest::plan`].
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// UE shards per day slice (≥ 1).
    pub shards: usize,
    /// Study days per day slice (≥ 1; clamped to the study span).
    pub days_per_slice: u32,
    /// Trace-store version for shard files (2 or 3).
    pub trace_version: u16,
    /// Scenario label recorded on the manifest and every entry.
    pub scenario: String,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            shards: 4,
            days_per_slice: u32::MAX,
            trace_version: telco_trace::store::VERSION3,
            scenario: "study".to_string(),
        }
    }
}

/// A manifest planning or parsing problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The JSON did not parse or did not match the schema.
    Parse(String),
    /// The manifest declares a format this build does not understand.
    UnknownFormat(u32),
    /// The plan parameters were invalid.
    BadPlan(String),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Parse(msg) => write!(f, "manifest does not parse: {msg}"),
            ManifestError::UnknownFormat(v) => write!(f, "unknown manifest format {v}"),
            ManifestError::BadPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Decompose `config` into a canonical shard grid: day slices of
    /// `days_per_slice` days (outer), UE ranges split as evenly as
    /// possible into `shards` parts (inner; the first `n_ues % shards`
    /// shards get one extra UE). Entry order is day-slice-major then
    /// UE-ascending — the merge order that reproduces the sequential
    /// study byte for byte.
    pub fn plan(config: SimConfig, opts: &PlanOptions) -> Result<Manifest, ManifestError> {
        if opts.shards == 0 {
            return Err(ManifestError::BadPlan("shards must be >= 1".into()));
        }
        if opts.days_per_slice == 0 {
            return Err(ManifestError::BadPlan("days_per_slice must be >= 1".into()));
        }
        if opts.trace_version != telco_trace::store::VERSION2
            && opts.trace_version != telco_trace::store::VERSION3
        {
            return Err(ManifestError::BadPlan(format!(
                "trace_version {} is not a chunked store version",
                opts.trace_version
            )));
        }
        if config.n_ues == 0 || config.n_days == 0 {
            return Err(ManifestError::BadPlan("config has no UE-days".into()));
        }
        let shards = opts.shards.min(config.n_ues);
        let days_per_slice = opts.days_per_slice.min(config.n_days);
        let base = config.n_ues / shards;
        let extra = config.n_ues % shards;
        let mut entries = Vec::new();
        let mut day_lo = 0u32;
        while day_lo < config.n_days {
            let day_hi = (day_lo + days_per_slice).min(config.n_days);
            let mut ue_lo = 0usize;
            for s in 0..shards {
                let ue_hi = ue_lo + base + usize::from(s < extra);
                entries.push(ShardEntry {
                    index: entries.len(),
                    day_lo,
                    day_hi,
                    ue_lo,
                    ue_hi,
                    seed: config.seed,
                    scenario: opts.scenario.clone(),
                });
                ue_lo = ue_hi;
            }
            day_lo = day_hi;
        }
        Ok(Manifest {
            format: MANIFEST_FORMAT,
            scenario: opts.scenario.clone(),
            trace_version: opts.trace_version,
            config,
            entries,
        })
    }

    /// Serialize to the canonical JSON form stored in the shard store.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse a stored manifest. Unknown JSON fields are ignored (forward
    /// compatibility); an unknown `format` is rejected.
    pub fn from_json(json: &str) -> Result<Manifest, ManifestError> {
        let manifest: Manifest =
            serde_json::from_str(json).map_err(|e| ManifestError::Parse(e.to_string()))?;
        if manifest.format != MANIFEST_FORMAT {
            return Err(ManifestError::UnknownFormat(manifest.format));
        }
        Ok(manifest)
    }

    /// Stable fingerprint of the whole plan (config + every entry).
    /// Seals the study-level completion marker: a merged study is only
    /// reusable if it was merged from *this* manifest.
    pub fn manifest_hash(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    /// Stable fingerprint of one work item, keyed by everything that
    /// determines the shard's bytes: the config fingerprint, the trace
    /// version, and the entry coordinates. Completion markers carry this
    /// hash — a marker written for a different config, seed, or shard
    /// geometry never validates a shard of this manifest.
    pub fn entry_hash(&self, index: usize) -> Option<u64> {
        let e = self.entries.get(index)?;
        let config_fp = fnv1a(serde_json::to_string(&self.config).unwrap_or_default().as_bytes());
        let key = format!(
            "telco-shard|fmt{}|cfg{config_fp:016x}|v{}|{}|seed{}|days{}..{}|ues{}..{}|idx{}",
            self.format,
            self.trace_version,
            e.scenario,
            e.seed,
            e.day_lo,
            e.day_hi,
            e.ue_lo,
            e.ue_hi,
            e.index
        );
        Some(fnv1a(key.as_bytes()))
    }

    /// Total UE-days across all entries (coverage check: must equal
    /// `n_ues × n_days`).
    pub fn planned_ue_days(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| (e.ue_hi - e.ue_lo) as u64 * u64::from(e.day_hi - e.day_lo))
            .sum()
    }
}

/// 64-bit FNV-1a over `bytes`: tiny, dependency-free, stable across
/// platforms and releases — exactly what completion markers need (this
/// is a fingerprint for *matching*, not a defence against adversaries).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical hex form of a fingerprint (16 lowercase hex digits).
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest(shards: usize, days_per_slice: u32) -> Manifest {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 10;
        cfg.n_days = 3;
        Manifest::plan(
            cfg,
            &PlanOptions {
                shards,
                days_per_slice,
                scenario: "tiny".into(),
                ..PlanOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn plan_covers_every_ue_day_exactly_once() {
        for shards in [1usize, 3, 4, 10] {
            for dps in [1u32, 2, 3, 99] {
                let m = tiny_manifest(shards, dps);
                assert_eq!(m.planned_ue_days(), 30, "shards={shards} dps={dps}");
                // No overlaps: mark every (ue, day) cell.
                let mut seen = [false; 30];
                for e in &m.entries {
                    for day in e.day_lo..e.day_hi {
                        for ue in e.ue_lo..e.ue_hi {
                            let cell = ue * 3 + day as usize;
                            assert!(!seen[cell], "cell ({ue},{day}) covered twice");
                            seen[cell] = true;
                        }
                    }
                }
                assert!(seen.iter().all(|&s| s));
                // Canonical order: indexes contiguous, day-major.
                for (i, e) in m.entries.iter().enumerate() {
                    assert_eq!(e.index, i);
                }
            }
        }
    }

    #[test]
    fn plan_clamps_excess_shards() {
        let m = tiny_manifest(64, 99);
        // 10 UEs cannot fill 64 shards; one UE per shard.
        assert_eq!(m.entries.len(), 10);
        assert!(m.entries.iter().all(|e| e.ue_hi - e.ue_lo == 1));
    }

    #[test]
    fn plan_rejects_degenerate_inputs() {
        let cfg = SimConfig::tiny();
        let bad = |opts: PlanOptions| Manifest::plan(cfg.clone(), &opts);
        assert!(bad(PlanOptions { shards: 0, ..PlanOptions::default() }).is_err());
        assert!(bad(PlanOptions { days_per_slice: 0, ..PlanOptions::default() }).is_err());
        assert!(bad(PlanOptions { trace_version: 1, ..PlanOptions::default() }).is_err());
        let mut empty = cfg;
        empty.n_ues = 0;
        assert!(Manifest::plan(empty, &PlanOptions::default()).is_err());
    }

    #[test]
    fn entry_hash_distinguishes_everything_that_matters() {
        let m = tiny_manifest(3, 99);
        let h0 = m.entry_hash(0).unwrap();
        let h1 = m.entry_hash(1).unwrap();
        assert_ne!(h0, h1, "different entries must hash differently");
        assert!(m.entry_hash(99).is_none());

        // Same geometry, different seed: different hash.
        let mut reseeded = m.clone();
        reseeded.config.seed ^= 1;
        for e in &mut reseeded.entries {
            e.seed ^= 1;
        }
        assert_ne!(reseeded.entry_hash(0).unwrap(), h0);

        // Same geometry, different trace version: different hash.
        let mut v2 = m.clone();
        v2.trace_version = telco_trace::store::VERSION2;
        assert_ne!(v2.entry_hash(0).unwrap(), h0);

        // Config changes beyond the seed reach the hash through the
        // config fingerprint.
        let mut warped = m.clone();
        warped.config.step_km *= 2.0;
        assert_ne!(warped.entry_hash(0).unwrap(), h0);

        // And hashing is stable: same manifest, same hash.
        assert_eq!(tiny_manifest(3, 99).entry_hash(0).unwrap(), h0);
    }

    #[test]
    fn fnv_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_eq!(hash_hex(0xab), "00000000000000ab");
    }
}
