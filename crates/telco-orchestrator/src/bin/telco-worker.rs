//! The shard worker binary: `telco-worker --dir <store> --entry <n>
//! [--fault <spec>]`.
//!
//! Runs one manifest entry against the store at `--dir` and exits.
//! Deliberately print-free — a worker's entire observable behavior is
//! its exit code plus the artifacts it publishes (the orchestrator
//! reads evidence, not stdout):
//!
//! - `0` — entry ran and its artifacts were published (which does NOT
//!   mean the shard is valid: the damage faults exit 0 on purpose);
//! - [`EXIT_INJECTED`] (17) — an injected `crash:K` fault fired;
//! - `1` — the entry failed (I/O, missing manifest, bad entry index);
//! - `2` — bad command line.
//!
//! The fault spec may also arrive via [`WORKER_FAULT_ENV`]; the flag
//! wins when both are set.

use std::process::ExitCode;

use telco_orchestrator::{
    load_manifest, run_entry, DirStore, FaultSpec, WorkerError, EXIT_INJECTED, WORKER_FAULT_ENV,
};

struct Args {
    dir: std::path::PathBuf,
    entry: usize,
    fault: Option<FaultSpec>,
}

fn parse_args() -> Result<Args, ()> {
    let mut dir = None;
    let mut entry = None;
    let mut fault = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dir" => dir = Some(std::path::PathBuf::from(argv.next().ok_or(())?)),
            "--entry" => entry = Some(argv.next().ok_or(())?.parse().map_err(|_| ())?),
            "--fault" => fault = Some(FaultSpec::parse(&argv.next().ok_or(())?).map_err(|_| ())?),
            _ => return Err(()),
        }
    }
    if fault.is_none() {
        if let Ok(spec) = std::env::var(WORKER_FAULT_ENV) {
            fault = Some(FaultSpec::parse(&spec).map_err(|_| ())?);
        }
    }
    Ok(Args { dir: dir.ok_or(())?, entry: entry.ok_or(())?, fault })
}

fn main() -> ExitCode {
    let Ok(args) = parse_args() else {
        return ExitCode::from(2);
    };
    let Ok(store) = DirStore::open(&args.dir) else {
        return ExitCode::from(1);
    };
    let Ok(manifest) = load_manifest(&store) else {
        return ExitCode::from(1);
    };
    match run_entry(&manifest, args.entry, &store, args.fault) {
        Ok(_) => ExitCode::SUCCESS,
        Err(WorkerError::InjectedCrash) => ExitCode::from(EXIT_INJECTED as u8),
        Err(_) => ExitCode::from(1),
    }
}
