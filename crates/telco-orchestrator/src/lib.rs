//! Sharded sweep orchestration for paper-scale studies.
//!
//! This crate turns one [`telco_sim::SimConfig`] into a [`Manifest`] of
//! `(day-range, UE-shard, seed, scenario)` work items, dispatches them
//! to a bounded fleet of worker processes (each spilling a sealed v3
//! shard trace plus a completion marker keyed by the manifest entry
//! hash), and merges the fleet's output into one study that streams
//! out-of-core — byte-identical to a single-process
//! [`telco_sim::run_study`] of the same config.
//!
//! The layers, bottom-up:
//!
//! - [`manifest`] — the plan: canonical shard grid, JSON schema,
//!   FNV-1a entry/manifest fingerprints;
//! - [`store`] — [`ShardStore`]: staged-write object storage (today a
//!   flat directory, shaped for a remote object store later);
//! - [`worker`] — [`run_entry`]: one entry end-to-end, with
//!   fault-injection hooks for the resilience harness;
//! - [`pool`] — [`WorkerPool`]: bounded dispatch with per-worker
//!   timeouts and bounded backoff retry, over subprocesses or threads;
//! - [`orchestrate`] — the resumable driver: evidence scan, dispatch,
//!   store-backed fan-in merge, study sealing, and [`open_study`] into
//!   the analytics pipeline.
//!
//! See `DESIGN.md` §10 for the determinism argument and the completion
//! protocol, and `EXPERIMENTS.md` for the paper-scale walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// telco-lint: deny-nondeterminism

pub mod manifest;
pub mod orchestrate;
pub mod pool;
pub mod store;
pub mod worker;

pub use manifest::{Manifest, ManifestError, PlanOptions, ShardEntry, MANIFEST_NAME};
pub use orchestrate::{
    load_manifest, open_study, orchestrate, shard_complete, store_manifest, OrchestrateError,
    OrchestrateOptions, OrchestrateReport, StudyMarker, StudySidecar, STUDY_MARKER, STUDY_SIDECAR,
    STUDY_TRACE,
};
pub use pool::{AttemptFailure, DispatchOutcome, Launcher, PoolOptions, WorkerPool, EVENT_LOG};
pub use store::{DirStore, ShardStore};
pub use worker::{
    marker_name, run_entry, sidecar_name, trace_name, FaultSpec, ShardMarker, ShardSidecar,
    WorkerError, EXIT_INJECTED, WORKER_FAULT_ENV,
};
