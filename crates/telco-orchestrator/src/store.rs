//! Shard-output storage, re-exported from the shared [`telco_store`]
//! crate (the staged-write/atomic-commit trait moved there so the
//! snapshot-native ingest service persists through the same contract).
//!
//! The orchestrator's historical name for the trait is kept as an
//! alias: a `ShardStore` *is* a [`telco_store::ObjectStore`].

pub use telco_store::{get_string, put_bytes, DirStore, ObjectStore as ShardStore};
