//! The bounded worker pool: dispatches manifest entries to workers,
//! enforces per-worker timeouts, and retries failures with backoff.
//!
//! Two launchers share one dispatch loop. [`Launcher::Subprocess`]
//! spawns the real `telco-worker` binary per entry — the production
//! shape, where a crash is a process exit and a timeout is a `kill`.
//! [`Launcher::InProcess`] runs [`run_entry`] on a thread — the fast
//! shape for determinism matrices, where spawning dozens of processes
//! would dominate the test budget. The completion protocol is identical
//! either way: a worker "succeeding" means nothing until the caller's
//! validator accepts the shard's published artifacts.
//!
//! Scheduling wall-clock time is the one intentional nondeterminism in
//! this crate: timeouts, backoff, and reaping order depend on it, but
//! *which shards complete and what bytes they contain* never do — that
//! is what the determinism matrix in `tests/` proves.

// telco-lint: allow(nondet): wall clock drives worker timeouts and retry backoff only; shard bytes never depend on it
use std::time::{Duration, Instant};

use std::collections::VecDeque;
use std::path::PathBuf;
use std::process::Stdio;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::manifest::Manifest;
use crate::store::ShardStore;
use crate::worker::{run_entry, FaultSpec};

/// Scheduling clock, isolated so the waiver story is one line.
fn clock() -> Instant {
    Instant::now() // telco-lint: allow(nondet): scheduling clock for timeouts/backoff, never recorded in outputs
}

/// Store name of the orchestrator's JSONL event log. Every dispatch,
/// completion, retry, and failure appends one line — the resume tests
/// count dispatches here, and operators tail it at paper scale.
pub const EVENT_LOG: &str = "orchestrator.log";

/// How workers are launched.
#[derive(Debug, Clone)]
pub enum Launcher {
    /// Spawn `program` with `prefix` arguments, then
    /// `--dir <store-root> --entry <n> [--fault <spec>]`. Requires a
    /// store with a local root. `program` is usually the `telco-worker`
    /// binary; `prefix` lets a multiplexing CLI route through a
    /// subcommand (e.g. `repro` + `["worker"]`).
    Subprocess {
        /// Worker executable.
        program: PathBuf,
        /// Arguments inserted before the worker flags.
        prefix: Vec<String>,
    },
    /// Run [`run_entry`] on a thread in this process. No process
    /// isolation: timeouts cannot kill a stuck entry (the pool waits),
    /// and an entry that aborts takes the orchestrator with it. Meant
    /// for tests and small local sweeps.
    InProcess,
}

/// Pool sizing and resilience knobs.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Maximum workers running at once.
    pub pool_size: usize,
    /// Per-attempt wall-clock budget before a subprocess worker is
    /// killed and the entry retried. Ignored by [`Launcher::InProcess`].
    pub timeout_ms: u64,
    /// Retries after the first attempt (so an entry runs at most
    /// `retries + 1` times).
    pub retries: u32,
    /// Base delay before a retry; doubles per failed attempt.
    pub backoff_ms: u64,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions { pool_size: 2, timeout_ms: 120_000, retries: 2, backoff_ms: 50 }
    }
}

/// Why one worker attempt failed.
#[derive(Debug, Clone)]
pub enum AttemptFailure {
    /// Worker process exited nonzero (code, if the OS reported one).
    Exit(Option<i32>),
    /// Worker exceeded the per-attempt timeout and was killed.
    Timeout,
    /// Worker claimed success but the published shard failed the
    /// caller's validation.
    Invalid(String),
    /// The worker could not be launched at all.
    Spawn(String),
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::Exit(Some(code)) => write!(f, "worker exited with code {code}"),
            AttemptFailure::Exit(None) => write!(f, "worker killed by signal"),
            AttemptFailure::Timeout => write!(f, "worker timed out"),
            AttemptFailure::Invalid(why) => write!(f, "shard failed validation: {why}"),
            AttemptFailure::Spawn(why) => write!(f, "worker failed to launch: {why}"),
        }
    }
}

/// What a dispatch run did, in aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Entries whose shards validated, in completion order.
    pub completed: Vec<usize>,
    /// Entries that exhausted every attempt, ascending.
    pub failed: Vec<usize>,
    /// Total worker launches (first attempts + retries).
    pub dispatches: u32,
    /// Launches beyond each entry's first attempt.
    pub retries: u32,
}

/// A bounded pool of shard workers over one manifest and store.
pub struct WorkerPool {
    manifest: Arc<Manifest>,
    store: Arc<dyn ShardStore>,
    launcher: Launcher,
    opts: PoolOptions,
}

enum WorkerHandle {
    Child(std::process::Child),
    Thread { join: Option<JoinHandle<Result<(), String>>> },
}

impl WorkerHandle {
    /// Non-blocking completion check; `Some` once the worker is done.
    fn poll(&mut self) -> std::io::Result<Option<Result<(), AttemptFailure>>> {
        match self {
            WorkerHandle::Child(child) => Ok(child.try_wait()?.map(|status| {
                if status.success() {
                    Ok(())
                } else {
                    Err(AttemptFailure::Exit(status.code()))
                }
            })),
            WorkerHandle::Thread { join } => {
                let finished = join.as_ref().is_some_and(|j| j.is_finished());
                if !finished {
                    return Ok(None);
                }
                let outcome = match join.take().expect("polled after completion").join() {
                    Ok(Ok(())) => Ok(()),
                    Ok(Err(why)) => Err(AttemptFailure::Invalid(why)),
                    Err(_) => Err(AttemptFailure::Spawn("worker thread panicked".into())),
                };
                Ok(Some(outcome))
            }
        }
    }

    /// Stop the worker if the launcher supports it (threads cannot be
    /// killed; the pool never calls this for them).
    fn kill(&mut self) {
        if let WorkerHandle::Child(child) = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn killable(&self) -> bool {
        matches!(self, WorkerHandle::Child(_))
    }
}

struct Job {
    entry: usize,
    attempt: u32,
    ready_at: Instant,
}

struct Running {
    entry: usize,
    attempt: u32,
    deadline: Instant,
    handle: WorkerHandle,
}

impl WorkerPool {
    /// Build a pool over `manifest` and `store`.
    pub fn new(
        manifest: Arc<Manifest>,
        store: Arc<dyn ShardStore>,
        launcher: Launcher,
        opts: PoolOptions,
    ) -> WorkerPool {
        WorkerPool { manifest, store, launcher, opts }
    }

    /// Append one JSONL event line to [`EVENT_LOG`]. Logging is
    /// best-effort: a full disk must not turn a completed shard into a
    /// failure.
    pub fn log_event(&self, line: &str) {
        let _ = self.store.append(EVENT_LOG, format!("{line}\n").as_bytes());
    }

    fn spawn(
        &self,
        entry: usize,
        fault: Option<FaultSpec>,
    ) -> Result<WorkerHandle, AttemptFailure> {
        match &self.launcher {
            Launcher::Subprocess { program, prefix } => {
                let root = self.store.local_root().ok_or_else(|| {
                    AttemptFailure::Spawn(
                        "subprocess launcher needs a store with a local root".into(),
                    )
                })?;
                let mut cmd = std::process::Command::new(program);
                cmd.args(prefix)
                    .arg("--dir")
                    .arg(root)
                    .arg("--entry")
                    .arg(entry.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::null());
                if let Some(f) = fault {
                    cmd.arg("--fault").arg(f.to_string());
                }
                cmd.spawn()
                    .map(WorkerHandle::Child)
                    .map_err(|e| AttemptFailure::Spawn(e.to_string()))
            }
            Launcher::InProcess => {
                let manifest = Arc::clone(&self.manifest);
                let store = Arc::clone(&self.store);
                let join = std::thread::spawn(move || {
                    run_entry(&manifest, entry, store.as_ref(), fault)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                });
                Ok(WorkerHandle::Thread { join: Some(join) })
            }
        }
    }

    /// Run `jobs` through the pool until each completes or exhausts its
    /// attempts. `faults` maps entry index → injected fault, applied on
    /// the *first* attempt only (the harness proves recovery, so the
    /// retry must be clean). After a worker reports success, `validate`
    /// is the arbiter: an `Err` sends the entry back through the retry
    /// path exactly like a crash.
    pub fn dispatch(
        &self,
        jobs: &[usize],
        faults: &[(usize, FaultSpec)],
        validate: &dyn Fn(usize) -> Result<(), String>,
    ) -> DispatchOutcome {
        let mut outcome = DispatchOutcome::default();
        let start = clock();
        let mut queue: VecDeque<Job> =
            jobs.iter().map(|&entry| Job { entry, attempt: 1, ready_at: start }).collect();
        let mut running: Vec<Running> = Vec::new();

        while !queue.is_empty() || !running.is_empty() {
            let now = clock();

            // Reap finished and overdue workers.
            let mut i = 0;
            while i < running.len() {
                let done = match running[i].handle.poll() {
                    Ok(done) => done,
                    Err(e) => Some(Err(AttemptFailure::Spawn(e.to_string()))),
                };
                let timed_out =
                    done.is_none() && running[i].handle.killable() && now >= running[i].deadline;
                let result = if timed_out {
                    running[i].handle.kill();
                    Some(Err(AttemptFailure::Timeout))
                } else {
                    done
                };
                let Some(result) = result else {
                    i += 1;
                    continue;
                };
                let worker = running.swap_remove(i);
                let result =
                    result.and_then(|()| validate(worker.entry).map_err(AttemptFailure::Invalid));
                match result {
                    Ok(()) => {
                        self.log_event(&format!(
                            "{{\"event\":\"complete\",\"entry\":{},\"attempt\":{}}}",
                            worker.entry, worker.attempt
                        ));
                        outcome.completed.push(worker.entry);
                    }
                    Err(failure) => self.requeue(
                        worker.entry,
                        worker.attempt,
                        &failure,
                        &mut queue,
                        &mut outcome,
                    ),
                }
            }

            // Fill free slots with jobs whose backoff has elapsed.
            while running.len() < self.opts.pool_size.max(1) {
                let Some(pos) = queue.iter().position(|j| j.ready_at <= now) else { break };
                let job = queue.remove(pos).expect("position came from this queue");
                let fault = (job.attempt == 1)
                    .then(|| faults.iter().find(|(e, _)| *e == job.entry).map(|(_, f)| *f))
                    .flatten();
                outcome.dispatches += 1;
                if job.attempt > 1 {
                    outcome.retries += 1;
                }
                self.log_event(&format!(
                    "{{\"event\":\"dispatch\",\"entry\":{},\"attempt\":{},\"fault\":{}}}",
                    job.entry,
                    job.attempt,
                    fault.map_or("null".to_string(), |f| format!("\"{f}\"")),
                ));
                match self.spawn(job.entry, fault) {
                    Ok(handle) => running.push(Running {
                        entry: job.entry,
                        attempt: job.attempt,
                        deadline: now + Duration::from_millis(self.opts.timeout_ms),
                        handle,
                    }),
                    Err(failure) => {
                        self.requeue(job.entry, job.attempt, &failure, &mut queue, &mut outcome)
                    }
                }
            }

            if !running.is_empty() || queue.iter().any(|j| j.ready_at > now) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        outcome.failed.sort_unstable();
        outcome
    }

    fn requeue(
        &self,
        entry: usize,
        attempt: u32,
        failure: &AttemptFailure,
        queue: &mut VecDeque<Job>,
        outcome: &mut DispatchOutcome,
    ) {
        let reason = serde_json::to_string(&failure.to_string())
            .unwrap_or_else(|_| "\"unprintable\"".into());
        if attempt <= self.opts.retries {
            let delay = self.opts.backoff_ms.saturating_mul(1u64 << (attempt - 1).min(16));
            self.log_event(&format!(
                "{{\"event\":\"retry\",\"entry\":{entry},\"attempt\":{attempt},\"reason\":{reason}}}"
            ));
            queue.push_back(Job {
                entry,
                attempt: attempt + 1,
                ready_at: clock() + Duration::from_millis(delay),
            });
        } else {
            self.log_event(&format!(
                "{{\"event\":\"failed\",\"entry\":{entry},\"attempts\":{attempt},\"reason\":{reason}}}"
            ));
            outcome.failed.push(entry);
        }
    }
}
