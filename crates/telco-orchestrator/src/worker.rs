//! The shard worker: runs one manifest entry and publishes its
//! artifacts, with injectable faults for the resilience test harness.
//!
//! A worker publishes three objects per entry, in a fixed order that
//! *is* the completion protocol:
//!
//! 1. `shard-NNNNN.tlho` — the shard trace, staged while writing and
//!    committed only after the `TEND` trailer is sealed;
//! 2. `shard-NNNNN.side.json` — the sidecar with the non-trace outputs
//!    (mobility rows, RAT ledger, core counters);
//! 3. `shard-NNNNN.ok.json` — the completion marker, written *last*,
//!    keyed by the manifest entry hash.
//!
//! A shard counts as complete only if the marker exists with the right
//! hash *and* the trace stream validates end-to-end (valid trailer,
//! every CRC good, counts matching the marker). The marker alone is
//! deliberately insufficient: the fault hooks below produce exactly the
//! pathologies — truncated tail, flipped byte — where a marker survives
//! but the stream must not pass.
//!
//! Fault hooks are driven by a `--fault` flag or the
//! [`WORKER_FAULT_ENV`] environment variable, and exist purely so the
//! integration suite can prove the orchestrator's detect-and-retry
//! story against real subprocess crashes rather than mocks.

use std::io::Write;

use serde::{Deserialize, Serialize};

use telco_signaling::entities::CoreNetwork;
use telco_sim::{run_shard, RatLedger, UeDayMobility, World};
use telco_trace::store::TraceWriter;

use crate::manifest::{hash_hex, Manifest};
use crate::store::{put_bytes, ShardStore};

/// Environment variable carrying a fault spec (the `--fault` flag takes
/// precedence). Lets the harness inject faults through orchestrators
/// that don't know they are under test.
pub const WORKER_FAULT_ENV: &str = "TELCO_WORKER_FAULT";

/// Process exit code a worker uses for an *injected* crash, so tests
/// can tell harness-made failures from real ones.
pub const EXIT_INJECTED: i32 = 17;

/// Store name of a shard's trace.
pub fn trace_name(index: usize) -> String {
    format!("shard-{index:05}.tlho")
}

/// Store name of a shard's sidecar (non-trace outputs).
pub fn sidecar_name(index: usize) -> String {
    format!("shard-{index:05}.side.json")
}

/// Store name of a shard's completion marker.
pub fn marker_name(index: usize) -> String {
    format!("shard-{index:05}.ok.json")
}

/// An injected failure mode (test harness only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Exit nonzero (without committing anything) after writing K chunk
    /// frames of the trace.
    CrashAfterChunks(u32),
    /// Write and commit the full trace, then truncate the committed
    /// file mid-chunk — a torn tail under a name that looks published.
    TruncateTail,
    /// Write and commit the full trace, then flip one byte in the
    /// middle of the committed file, before writing the marker.
    FlipByte,
    /// Sleep this many milliseconds before simulating (for the
    /// per-worker timeout path).
    Stall(u64),
}

impl FaultSpec {
    /// Parse `crash:K`, `truncate`, `corrupt`, or `stall:MS`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        if let Some(k) = spec.strip_prefix("crash:") {
            return k
                .parse()
                .map(FaultSpec::CrashAfterChunks)
                .map_err(|_| format!("bad crash chunk count in {spec:?}"));
        }
        if let Some(ms) = spec.strip_prefix("stall:") {
            return ms
                .parse()
                .map(FaultSpec::Stall)
                .map_err(|_| format!("bad stall milliseconds in {spec:?}"));
        }
        match spec {
            "truncate" => Ok(FaultSpec::TruncateTail),
            "corrupt" => Ok(FaultSpec::FlipByte),
            other => Err(format!(
                "unknown fault {other:?} (expected crash:K, truncate, corrupt, or stall:MS)"
            )),
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::CrashAfterChunks(k) => write!(f, "crash:{k}"),
            FaultSpec::TruncateTail => write!(f, "truncate"),
            FaultSpec::FlipByte => write!(f, "corrupt"),
            FaultSpec::Stall(ms) => write!(f, "stall:{ms}"),
        }
    }
}

/// The completion marker: what a finished worker claims about its shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMarker {
    /// Entry index this marker seals.
    pub entry: usize,
    /// Hex [`Manifest::entry_hash`] of the entry as the worker saw it.
    pub entry_hash: String,
    /// Records in the shard trace.
    pub records: u64,
    /// Chunk frames in the shard trace.
    pub chunks: u32,
}

/// The sidecar: every non-trace output of the shard, in shard-local
/// form (mobility rows day-major/UE-ascending; ledger and core counters
/// summed over the shard only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSidecar {
    /// Entry index this sidecar belongs to.
    pub entry: usize,
    /// Hex entry hash, so a stale sidecar can never pair with a fresh
    /// trace.
    pub entry_hash: String,
    /// Per-UE-day mobility rows of the shard.
    pub mobility: Vec<UeDayMobility>,
    /// RAT attach/traffic ledger summed over the shard.
    pub ledger: RatLedger,
    /// Core-network message counters summed over the shard.
    pub core: CoreNetwork,
}

/// Why a worker run failed.
#[derive(Debug)]
pub enum WorkerError {
    /// The manifest has no such entry.
    BadEntry(usize),
    /// A fault hook fired (`crash:K`): the worker must exit nonzero.
    InjectedCrash,
    /// A fault hook needed a local file but the store has none.
    FaultNeedsLocalStore,
    /// Storage or serialization failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::BadEntry(i) => write!(f, "manifest has no entry {i}"),
            WorkerError::InjectedCrash => write!(f, "injected crash fired"),
            WorkerError::FaultNeedsLocalStore => {
                write!(f, "truncate/corrupt faults need a store with local paths")
            }
            WorkerError::Io(e) => write!(f, "worker I/O failed: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Run one manifest entry end-to-end: simulate the shard, stream its
/// sorted records into a staged trace, seal and commit it, publish the
/// sidecar, and finally the completion marker. Returns the marker it
/// published.
///
/// With a `fault`, the corresponding pathology is produced instead (see
/// [`FaultSpec`]); `crash:K` returns [`WorkerError::InjectedCrash`]
/// with the staged trace abandoned uncommitted, while `truncate` /
/// `corrupt` damage the *committed* trace and then publish marker and
/// sidecar as if nothing happened — the parent's validation, not the
/// worker's honesty, must catch those.
pub fn run_entry(
    manifest: &Manifest,
    index: usize,
    store: &dyn ShardStore,
    fault: Option<FaultSpec>,
) -> Result<ShardMarker, WorkerError> {
    let entry = manifest.entries.get(index).ok_or(WorkerError::BadEntry(index))?.clone();
    let entry_hash = hash_hex(manifest.entry_hash(index).ok_or(WorkerError::BadEntry(index))?);

    if let Some(FaultSpec::Stall(ms)) = fault {
        // telco-lint: allow(nondet): harness-only stall fault; the sleep never shapes trace bytes
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    // The world is a pure function of the config: every worker builds an
    // identical copy. At paper scale this is the term to optimize (build
    // once per process, run many entries); correctness never depends on it.
    let world = World::build(&manifest.config);
    let out =
        run_shard(&world, &manifest.config, entry.day_lo..entry.day_hi, entry.ue_lo..entry.ue_hi);

    // Stream the sorted shard records into the staged trace, one chunk
    // per study day (mirroring TraceWriter::write_dataset, unrolled here
    // so the crash fault can count committed chunk frames).
    let trace = trace_name(index);
    let mut writer = TraceWriter::with_version(
        store.put(&trace)?,
        manifest.config.n_days,
        manifest.trace_version,
    )?;
    let records = out.dataset.records();
    let mut start = 0usize;
    while start < records.len() {
        let day = records[start].day();
        let mut end = start + 1;
        while end < records.len() && records[end].day() == day {
            end += 1;
        }
        writer.write_chunk(&records[start..end])?;
        start = end;
        if let Some(FaultSpec::CrashAfterChunks(k)) = fault {
            if writer.chunks_written() >= k {
                // Abandon the staged trace: no trailer, no commit, no
                // marker. The parent sees only a nonzero exit.
                return Err(WorkerError::InjectedCrash);
            }
        }
    }
    if let Some(FaultSpec::CrashAfterChunks(k)) = fault {
        if writer.chunks_written() >= k {
            return Err(WorkerError::InjectedCrash);
        }
    }
    let marker = ShardMarker {
        entry: index,
        entry_hash: entry_hash.clone(),
        records: writer.records_written(),
        chunks: writer.chunks_written(),
    };
    let mut sink = writer.finish()?;
    sink.flush()?;
    drop(sink);
    store.commit(&trace)?;

    // Post-commit damage faults: the trace is published and sealed; now
    // tear it, then lie about completion.
    match fault {
        Some(FaultSpec::TruncateTail) => damage_committed(store, &trace, Damage::Truncate)?,
        Some(FaultSpec::FlipByte) => damage_committed(store, &trace, Damage::Flip)?,
        _ => {}
    }

    let sidecar = ShardSidecar {
        entry: index,
        entry_hash: entry_hash.clone(),
        mobility: out.mobility,
        ledger: out.ledger,
        core: out.core,
    };
    let side_json = serde_json::to_string(&sidecar)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    put_bytes(store, &sidecar_name(index), side_json.as_bytes())?;

    let marker_json = serde_json::to_string(&marker)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    put_bytes(store, &marker_name(index), marker_json.as_bytes())?;
    Ok(marker)
}

enum Damage {
    Truncate,
    Flip,
}

/// Damage a committed trace in place (fault harness only; needs a store
/// with local paths).
fn damage_committed(store: &dyn ShardStore, name: &str, damage: Damage) -> Result<(), WorkerError> {
    let path = store.local_path(name).ok_or(WorkerError::FaultNeedsLocalStore)?;
    let len = std::fs::metadata(&path)?.len();
    match damage {
        Damage::Truncate => {
            // Cut mid-chunk: drop the 20-byte trailer plus a prefix of
            // the final chunk, leaving a stream that simply stops.
            let cut = len.saturating_sub(37).max(1);
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(cut)?;
        }
        Damage::Flip => {
            let mut bytes = std::fs::read(&path)?;
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0xFF;
            }
            std::fs::write(&path, bytes)?;
        }
    }
    Ok(())
}
