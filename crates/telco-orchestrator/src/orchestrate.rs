//! The orchestrator proper: scan the store for completed shards,
//! dispatch only what's missing, merge the fleet's output into one
//! sealed study, and publish the study-level completion marker.
//!
//! Resumability is a consequence of the completion protocol, not a
//! feature bolted on: every invocation re-derives "what is done" from
//! the artifacts themselves (marker hash + full stream validation), so
//! a crashed orchestrator, a killed worker, or a torn shard file all
//! converge to the same answer — re-dispatch exactly the shards whose
//! evidence doesn't hold up, touch nothing that does.

use std::io::Write;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use telco_sim::{RunnerMode, RunnerStats, SimOutput, StudyData, TraceSource, World, MERGE_FAN_IN};
use telco_trace::dataset::SignalingDataset;
use telco_trace::probe::validate_stream;
use telco_trace::store::{merge_sorted_readers_to_writer, TraceReader, TraceWriter};

use crate::manifest::{hash_hex, Manifest, ManifestError, MANIFEST_NAME};
use crate::pool::{DispatchOutcome, Launcher, PoolOptions, WorkerPool};
use crate::store::{get_string, put_bytes, ShardStore};
use crate::worker::{marker_name, sidecar_name, trace_name, FaultSpec, ShardMarker, ShardSidecar};

/// Store name of the merged study trace.
pub const STUDY_TRACE: &str = "study-trace.tlho";

/// Store name of the merged study sidecar (mobility, ledger, core).
pub const STUDY_SIDECAR: &str = "study.side.json";

/// Store name of the study-level completion marker — written last, so
/// its presence (with a matching manifest hash) means the whole run,
/// merge included, finished.
pub const STUDY_MARKER: &str = "study.ok.json";

/// The study-level completion marker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyMarker {
    /// Hex [`Manifest::manifest_hash`] the study was merged from.
    pub manifest_hash: String,
    /// Records in the merged trace.
    pub records: u64,
    /// Chunk frames in the merged trace.
    pub chunks: u32,
}

/// The merged study sidecar: the fleet's non-trace outputs folded into
/// sequential-run form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySidecar {
    /// Hex manifest hash, pairing the sidecar with its marker.
    pub manifest_hash: String,
    /// All mobility rows, sorted (day, UE) — the sequential runner's
    /// emission order.
    pub mobility: Vec<telco_sim::UeDayMobility>,
    /// RAT ledger summed over every shard.
    pub ledger: telco_sim::RatLedger,
    /// Core counters summed over every shard.
    pub core: telco_signaling::entities::CoreNetwork,
}

/// Orchestration knobs.
#[derive(Debug, Clone)]
pub struct OrchestrateOptions {
    /// How workers run (subprocess fleet or in-process threads).
    pub launcher: Launcher,
    /// Pool sizing, timeout, and retry policy.
    pub pool: PoolOptions,
    /// Injected faults, entry index → fault, first attempt only (test
    /// harness; empty in production).
    pub faults: Vec<(usize, FaultSpec)>,
}

impl OrchestrateOptions {
    /// Production defaults over a given launcher.
    pub fn new(launcher: Launcher) -> Self {
        OrchestrateOptions { launcher, pool: PoolOptions::default(), faults: Vec::new() }
    }
}

/// What one orchestrator invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestrateReport {
    /// Entries in the manifest.
    pub total: usize,
    /// Entries already complete when the run started (resume skips).
    pub skipped: usize,
    /// Worker launches this invocation (first attempts + retries).
    pub dispatched: u32,
    /// Launches beyond first attempts.
    pub retried: u32,
    /// Records in the sealed study trace.
    pub records: u64,
    /// Whether a valid sealed study already existed and the whole run
    /// (dispatch *and* merge) was skipped.
    pub reused_study: bool,
}

/// Why orchestration failed.
#[derive(Debug)]
pub enum OrchestrateError {
    /// The manifest is missing or malformed.
    Manifest(ManifestError),
    /// Storage failed.
    Io(std::io::Error),
    /// Entries exhausted every attempt (ascending indexes).
    ShardsFailed(Vec<usize>),
    /// The merged study contradicts the shard markers — a bug or a
    /// concurrently-mutated store; nothing was published.
    Mismatch(String),
    /// The study artifacts are missing or fail validation (for
    /// [`open_study`]).
    StudyInvalid(String),
}

impl From<std::io::Error> for OrchestrateError {
    fn from(e: std::io::Error) -> Self {
        OrchestrateError::Io(e)
    }
}

impl From<ManifestError> for OrchestrateError {
    fn from(e: ManifestError) -> Self {
        OrchestrateError::Manifest(e)
    }
}

impl std::fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestrateError::Manifest(e) => write!(f, "{e}"),
            OrchestrateError::Io(e) => write!(f, "store I/O failed: {e}"),
            OrchestrateError::ShardsFailed(idx) => {
                write!(f, "shards failed after all retries: {idx:?}")
            }
            OrchestrateError::Mismatch(why) => write!(f, "merge mismatch: {why}"),
            OrchestrateError::StudyInvalid(why) => write!(f, "study not usable: {why}"),
        }
    }
}

impl std::error::Error for OrchestrateError {}

/// Store the manifest as [`MANIFEST_NAME`] (staged + committed).
pub fn store_manifest(store: &dyn ShardStore, manifest: &Manifest) -> std::io::Result<()> {
    put_bytes(store, MANIFEST_NAME, manifest.to_json().as_bytes())
}

/// Load the manifest from the store.
pub fn load_manifest(store: &dyn ShardStore) -> Result<Manifest, OrchestrateError> {
    let json = get_string(store, MANIFEST_NAME)?;
    Ok(Manifest::from_json(&json)?)
}

/// Decide whether shard `index` is complete, from evidence alone.
///
/// Complete means all of: the marker parses and carries this manifest's
/// entry hash; the sidecar parses and carries the same hash; and the
/// trace stream validates end-to-end (sealed trailer, every CRC good)
/// with version, day span, and counts matching marker and manifest. A
/// valid trailer alone is *not* enough — a flipped byte mid-payload
/// leaves the trailer intact, which is exactly what the `corrupt` fault
/// injects — so the authoritative check reads every chunk.
pub fn shard_complete(
    manifest: &Manifest,
    index: usize,
    store: &dyn ShardStore,
) -> Result<(), String> {
    let expected = hash_hex(manifest.entry_hash(index).ok_or_else(|| format!("no entry {index}"))?);

    let marker_json =
        get_string(store, &marker_name(index)).map_err(|e| format!("no completion marker: {e}"))?;
    let marker: ShardMarker =
        serde_json::from_str(&marker_json).map_err(|e| format!("marker does not parse: {e}"))?;
    if marker.entry != index {
        return Err(format!("marker is for entry {}, not {index}", marker.entry));
    }
    if marker.entry_hash != expected {
        return Err(format!(
            "marker hash {} does not match entry hash {expected}",
            marker.entry_hash
        ));
    }

    let side_json =
        get_string(store, &sidecar_name(index)).map_err(|e| format!("no sidecar: {e}"))?;
    let sidecar: ShardSidecar =
        serde_json::from_str(&side_json).map_err(|e| format!("sidecar does not parse: {e}"))?;
    if sidecar.entry_hash != expected {
        return Err("sidecar hash does not match entry hash".into());
    }

    let trace = store.get(&trace_name(index)).map_err(|e| format!("no trace: {e}"))?;
    let summary =
        validate_stream(trace).map_err(|issue| format!("trace invalid: {:?}", issue.error))?;
    if summary.version != manifest.trace_version {
        return Err(format!(
            "trace is v{}, manifest wants v{}",
            summary.version, manifest.trace_version
        ));
    }
    if summary.days != manifest.config.n_days {
        return Err(format!(
            "trace spans {} days, study spans {}",
            summary.days, manifest.config.n_days
        ));
    }
    if summary.records != marker.records || summary.chunks != u64::from(marker.chunks) {
        return Err(format!(
            "trace has {} records / {} chunks, marker claims {} / {}",
            summary.records, summary.chunks, marker.records, marker.chunks
        ));
    }
    Ok(())
}

/// Whether a sealed study for exactly this manifest already exists and
/// validates. `Ok` carries its marker.
fn study_complete(manifest: &Manifest, store: &dyn ShardStore) -> Result<StudyMarker, String> {
    let expected = hash_hex(manifest.manifest_hash());
    let marker_json =
        get_string(store, STUDY_MARKER).map_err(|e| format!("no study marker: {e}"))?;
    let marker: StudyMarker = serde_json::from_str(&marker_json)
        .map_err(|e| format!("study marker does not parse: {e}"))?;
    if marker.manifest_hash != expected {
        return Err("study was merged from a different manifest".into());
    }
    let trace = store.get(STUDY_TRACE).map_err(|e| format!("no study trace: {e}"))?;
    let summary = validate_stream(trace)
        .map_err(|issue| format!("study trace invalid: {:?}", issue.error))?;
    if summary.records != marker.records || summary.chunks != u64::from(marker.chunks) {
        return Err("study trace does not match its marker".into());
    }
    let side_json =
        get_string(store, STUDY_SIDECAR).map_err(|e| format!("no study sidecar: {e}"))?;
    let sidecar: StudySidecar = serde_json::from_str(&side_json)
        .map_err(|e| format!("study sidecar does not parse: {e}"))?;
    if sidecar.manifest_hash != expected {
        return Err("study sidecar is from a different manifest".into());
    }
    Ok(marker)
}

/// Run (or resume) the sharded sweep described by the store's manifest:
/// dispatch incomplete shards to the worker fleet, then merge every
/// shard trace into the sealed study and publish sidecar + marker.
///
/// Idempotent end to end: a second invocation over a completed store
/// validates the sealed study and returns without dispatching or
/// merging; an invocation over a partial store re-runs exactly the
/// shards whose artifacts fail [`shard_complete`].
pub fn orchestrate(
    store: Arc<dyn ShardStore>,
    opts: &OrchestrateOptions,
) -> Result<OrchestrateReport, OrchestrateError> {
    let manifest = Arc::new(load_manifest(store.as_ref())?);
    let total = manifest.entries.len();
    let pool = WorkerPool::new(Arc::clone(&manifest), Arc::clone(&store), opts.launcher.clone(), {
        opts.pool.clone()
    });

    // A sealed study for this exact manifest short-circuits everything.
    if let Ok(marker) = study_complete(&manifest, store.as_ref()) {
        pool.log_event(&format!("{{\"event\":\"study-reused\",\"records\":{}}}", marker.records));
        return Ok(OrchestrateReport {
            total,
            skipped: total,
            dispatched: 0,
            retried: 0,
            records: marker.records,
            reused_study: true,
        });
    }

    // Evidence scan: which shards are already done?
    let mut jobs = Vec::new();
    for index in 0..total {
        if shard_complete(&manifest, index, store.as_ref()).is_err() {
            // Clear a stale marker so a crash mid-retry can't leave an
            // old seal next to a half-rewritten trace.
            store.delete(&marker_name(index))?;
            jobs.push(index);
        }
    }
    let skipped = total - jobs.len();
    pool.log_event(&format!(
        "{{\"event\":\"run-start\",\"total\":{total},\"skipped\":{skipped},\"jobs\":{}}}",
        jobs.len()
    ));

    let manifest_for_validate = Arc::clone(&manifest);
    let store_for_validate = Arc::clone(&store);
    let validate = move |index: usize| {
        shard_complete(&manifest_for_validate, index, store_for_validate.as_ref())
    };
    let DispatchOutcome { completed: _, failed, dispatches, retries } =
        pool.dispatch(&jobs, &opts.faults, &validate);
    if !failed.is_empty() {
        return Err(OrchestrateError::ShardsFailed(failed));
    }

    // Merge every shard (store-backed fan-in reduction; shard files are
    // kept — they are the resume evidence and the re-merge inputs).
    let (records, chunks) = merge_all_shards(&manifest, store.as_ref())?;
    let claimed: u64 = (0..total)
        .map(|index| {
            let marker_json = get_string(store.as_ref(), &marker_name(index))?;
            let marker: ShardMarker = serde_json::from_str(&marker_json)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            Ok::<u64, std::io::Error>(marker.records)
        })
        .sum::<Result<u64, _>>()?;
    if claimed != records {
        return Err(OrchestrateError::Mismatch(format!(
            "shard markers claim {claimed} records, merge produced {records}"
        )));
    }

    publish_study_sidecar(&manifest, store.as_ref())?;
    let study_marker =
        StudyMarker { manifest_hash: hash_hex(manifest.manifest_hash()), records, chunks };
    let marker_json = serde_json::to_string(&study_marker)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    put_bytes(store.as_ref(), STUDY_MARKER, marker_json.as_bytes())?;
    pool.log_event(&format!("{{\"event\":\"study-sealed\",\"records\":{records}}}"));

    Ok(OrchestrateReport {
        total,
        skipped,
        dispatched: dispatches,
        retried: retries,
        records,
        reused_study: false,
    })
}

/// Fan-in reduce all shard traces into [`STUDY_TRACE`]. Returns the
/// merged (records, chunks). Intermediate `merge-*` objects are deleted
/// as consumed; shard traces are never deleted.
fn merge_all_shards(
    manifest: &Manifest,
    store: &dyn ShardStore,
) -> Result<(u64, u32), OrchestrateError> {
    let invalid = |e: telco_trace::io::CodecError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}"))
    };
    let mut names: Vec<String> = (0..manifest.entries.len()).map(trace_name).collect();
    let mut level = 0usize;
    loop {
        let final_pass = names.len() <= MERGE_FAN_IN;
        let mut next = Vec::new();
        let mut sealed = (0u64, 0u32);
        for (g, group) in names.chunks(MERGE_FAN_IN).enumerate() {
            let out = if final_pass {
                STUDY_TRACE.to_string()
            } else {
                format!("merge-l{level}-{g:04}.tlho")
            };
            let mut readers = Vec::with_capacity(group.len());
            for name in group {
                readers.push(TraceReader::new(store.get(name)?).map_err(invalid)?);
            }
            let mut writer = TraceWriter::with_version(
                store.put(&out)?,
                manifest.config.n_days,
                manifest.trace_version,
            )?;
            let records = merge_sorted_readers_to_writer(readers, &mut writer)?;
            let chunks = writer.chunks_written();
            let mut sink = writer.finish()?;
            sink.flush()?;
            drop(sink);
            store.commit(&out)?;
            for name in group.iter().filter(|n| n.starts_with("merge-")) {
                store.delete(name)?;
            }
            sealed = (records, chunks);
            next.push(out);
        }
        if final_pass {
            return Ok(sealed);
        }
        names = next;
        level += 1;
    }
}

/// Fold every shard sidecar into the study sidecar and publish it.
fn publish_study_sidecar(
    manifest: &Manifest,
    store: &dyn ShardStore,
) -> Result<(), OrchestrateError> {
    let mut mobility = Vec::new();
    let mut ledger = telco_sim::RatLedger::default();
    let mut core = telco_signaling::entities::CoreNetwork::new();
    for index in 0..manifest.entries.len() {
        let side_json = get_string(store, &sidecar_name(index))?;
        let sidecar: ShardSidecar = serde_json::from_str(&side_json).map_err(|e| {
            OrchestrateError::Mismatch(format!("sidecar {index} does not parse: {e}"))
        })?;
        mobility.extend(sidecar.mobility);
        ledger.merge(&sidecar.ledger);
        core.merge(&sidecar.core);
    }
    // (day, UE) is the sequential runner's emission order, so downstream
    // mobility analyses see exactly the rows a single-process run yields.
    mobility.sort_by_key(|m| (m.day, m.ue));
    let sidecar =
        StudySidecar { manifest_hash: hash_hex(manifest.manifest_hash()), mobility, ledger, core };
    let json = serde_json::to_string(&sidecar)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    put_bytes(store, STUDY_SIDECAR, json.as_bytes())?;
    Ok(())
}

/// Open a sealed orchestrated study as a [`StudyData`], validating the
/// study marker against the manifest first. The trace streams from the
/// store's local file (out-of-core, like a spilled run); the sidecar
/// supplies mobility, ledger, and core outputs.
pub fn open_study(store: &dyn ShardStore) -> Result<StudyData, OrchestrateError> {
    let manifest = load_manifest(store)?;
    let marker = study_complete(&manifest, store).map_err(OrchestrateError::StudyInvalid)?;
    let side_json = get_string(store, STUDY_SIDECAR)?;
    let sidecar: StudySidecar = serde_json::from_str(&side_json)
        .map_err(|e| OrchestrateError::StudyInvalid(format!("sidecar: {e}")))?;
    let path = store.local_path(STUDY_TRACE).ok_or_else(|| {
        OrchestrateError::StudyInvalid("store has no local study trace to stream".into())
    })?;

    let config = manifest.config.clone();
    let world = World::build(&config);
    let ue_days = manifest.planned_ue_days() as usize;
    let chunk_ues = manifest.entries.iter().map(|e| e.ue_hi - e.ue_lo).max().unwrap_or(1).max(1);
    let output = SimOutput {
        dataset: SignalingDataset::new(config.n_days),
        mobility: sidecar.mobility,
        ledger: sidecar.ledger,
        core: sidecar.core,
        runner: RunnerStats {
            mode: RunnerMode::Orchestrated,
            threads: 1,
            chunk_ues,
            work_items: manifest.entries.len(),
            ue_days,
        },
    };
    let trace = TraceSource::spilled(path, config.n_days, marker.records);
    Ok(StudyData { config, world, output, trace })
}
