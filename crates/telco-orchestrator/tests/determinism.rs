//! The orchestrated determinism matrix: every (shard count, pool size)
//! combination must reproduce the single-process study — identical
//! record stream, identical mobility rows, core counters exact, ledger
//! equal up to documented float regrouping — and, within one manifest,
//! the merged study file must be byte-identical across pool sizes.

mod common;

use common::*;
use telco_orchestrator::{open_study, orchestrate};
use telco_sim::RunnerMode;
use telco_trace::io::encode;

#[test]
fn shard_pool_matrix_reproduces_the_sequential_study() {
    let cfg = test_cfg();
    let reference = baseline(&cfg);
    let reference_bytes = encode(&reference.dataset);

    for shards in [1usize, 4, 16] {
        // The merged study *file* is chunk-topology-dependent (the merge
        // passes the tail through raw), so byte-compare files only within
        // one manifest; across shard counts, compare the record stream.
        let mut file_bytes: Option<Vec<u8>> = None;
        for pool in [1usize, 2, 4] {
            let label = format!("shards={shards} pool={pool}");
            let store = planned_store(&format!("matrix_s{shards}_p{pool}"), &cfg, shards, u32::MAX);
            let report = orchestrate(store.clone(), &in_process(pool)).expect(&label);
            assert_eq!(report.total, shards, "{label}");
            assert_eq!(report.skipped, 0, "{label}");
            assert_eq!(report.dispatched, shards as u32, "{label}");
            assert_eq!(report.retried, 0, "{label}");

            let merged = study_dataset(store.as_ref());
            assert_eq!(
                encode(&merged),
                reference_bytes,
                "{label}: record stream diverged from the sequential study"
            );

            let bytes = study_bytes(store.as_ref());
            match &file_bytes {
                None => file_bytes = Some(bytes),
                Some(first) => {
                    assert_eq!(&bytes, first, "{label}: study file bytes changed with pool size")
                }
            }

            let study = open_study(store.as_ref()).expect(&label);
            assert_eq!(study.output.runner.mode, RunnerMode::Orchestrated, "{label}");
            assert_eq!(study.output.mobility, reference.mobility, "{label}: mobility diverged");
            assert_eq!(study.output.core, reference.core, "{label}: core counters diverged");
            assert_ledger_close(
                &reference.ledger.attach_ms,
                &study.output.ledger.attach_ms,
                &format!("{label} attach_ms"),
            );
            assert_ledger_close(
                &reference.ledger.ul_mb,
                &study.output.ledger.ul_mb,
                &format!("{label} ul_mb"),
            );
            assert_ledger_close(
                &reference.ledger.dl_mb,
                &study.output.ledger.dl_mb,
                &format!("{label} dl_mb"),
            );
            assert!(study.trace.is_spilled(), "{label}: orchestrated studies stream out-of-core");
            assert_eq!(study.trace.len(), reference.dataset.records().len() as u64, "{label}");
        }
    }
}

#[test]
fn day_sliced_plans_also_reproduce_the_study() {
    // Day slicing multiplies entries (slices × shards) and exercises the
    // day-major leg of the canonical merge order.
    let cfg = test_cfg();
    let reference_bytes = encode(&baseline(&cfg).dataset);
    let store = planned_store("daysliced", &cfg, 3, 1);
    let report = orchestrate(store.clone(), &in_process(2)).unwrap();
    assert_eq!(report.total, 6, "2 day slices x 3 UE shards");
    assert_eq!(encode(&study_dataset(store.as_ref())), reference_bytes);
}

#[test]
fn subprocess_fleet_matches_in_process_fleet() {
    // The production launcher: real worker subprocesses, same bytes.
    let cfg = test_cfg();
    let reference_bytes = encode(&baseline(&cfg).dataset);
    let store = planned_store("subproc", &cfg, 4, u32::MAX);
    let report = orchestrate(store.clone(), &subprocess(2)).unwrap();
    assert_eq!(report.dispatched, 4);
    assert_eq!(report.retried, 0);
    assert_eq!(encode(&study_dataset(store.as_ref())), reference_bytes);

    let in_proc = planned_store("subproc_ref", &cfg, 4, u32::MAX);
    orchestrate(in_proc.clone(), &in_process(2)).unwrap();
    assert_eq!(
        study_bytes(store.as_ref()),
        study_bytes(in_proc.as_ref()),
        "same manifest, different launcher: study file must be byte-identical"
    );
}
