//! Resume correctness: a second orchestrator invocation re-dispatches
//! only the shards whose completion evidence fails, verified by
//! dispatch counts in the manifest log, and completes to a study
//! identical to an uninterrupted run — including the partial-TEND-
//! trailer edge case where a shard dies mid-seal.

mod common;

use common::*;
use telco_orchestrator::{
    load_manifest, marker_name, orchestrate, trace_name, FaultSpec, OrchestrateError, ShardStore,
    STUDY_MARKER,
};

#[test]
fn resume_skips_completed_shards_and_finishes_identically() {
    let cfg = test_cfg();
    let clean = planned_store("resume_clean", &cfg, 4, u32::MAX);
    orchestrate(clean.clone(), &in_process(2)).unwrap();
    let clean_bytes = study_bytes(clean.as_ref());

    // First invocation: shard 2 crashes and the retry budget is zero, so
    // the run dies with three shards complete — the "orchestrator killed
    // after shard k of n" shape, reproduced deterministically.
    let store = planned_store("resume", &cfg, 4, u32::MAX);
    let mut opts = in_process(2);
    opts.pool.retries = 0;
    opts.faults = vec![(2, FaultSpec::CrashAfterChunks(1))];
    match orchestrate(store.clone(), &opts) {
        Err(OrchestrateError::ShardsFailed(failed)) => assert_eq!(failed, vec![2]),
        other => panic!("expected ShardsFailed, got {other:?}"),
    }
    assert_eq!(log_count(store.as_ref(), "dispatch"), 4, "first run dispatched every shard");

    // Second invocation, no faults: only the broken shard re-dispatches.
    let report = orchestrate(store.clone(), &in_process(2)).unwrap();
    assert_eq!(report.total, 4);
    assert_eq!(report.skipped, 3, "three completed shards must be skipped");
    assert_eq!(report.dispatched, 1, "exactly the missing shard re-dispatches");
    assert_eq!(log_count(store.as_ref(), "dispatch"), 5, "4 first-run + 1 resume dispatch");
    assert_eq!(study_bytes(store.as_ref()), clean_bytes);

    // Third invocation: the sealed study short-circuits everything.
    let report = orchestrate(store.clone(), &in_process(2)).unwrap();
    assert!(report.reused_study);
    assert_eq!(report.dispatched, 0);
    assert_eq!(log_count(store.as_ref(), "dispatch"), 5, "no new dispatches");
}

#[test]
fn partial_trailer_shard_is_detected_and_redispatched() {
    // A worker that dies *while writing the TEND trailer* leaves a trace
    // that has its magic but not its bytes — with the completion marker
    // already absent or present depending on timing. Simulate the nastier
    // half: marker present (stale from a prior complete run), trailer torn.
    let cfg = test_cfg();
    let store = planned_store("resume_tend", &cfg, 3, u32::MAX);
    orchestrate(store.clone(), &in_process(2)).unwrap();
    let sealed_bytes = study_bytes(store.as_ref());

    // Tear shard 1: drop the last 10 bytes, leaving half a trailer, and
    // unseal the study so the orchestrator re-scans shards.
    let shard_path = store.local_path(&trace_name(1)).unwrap();
    let len = std::fs::metadata(&shard_path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&shard_path).unwrap();
    file.set_len(len - 10).unwrap();
    drop(file);
    store.delete(STUDY_MARKER).unwrap();

    let manifest = load_manifest(store.as_ref()).unwrap();
    assert!(
        telco_orchestrator::shard_complete(&manifest, 1, store.as_ref()).is_err(),
        "a partial trailer must invalidate the shard despite its marker"
    );
    assert!(store.exists(&marker_name(1)).unwrap(), "the stale marker is really there");

    let before = log_count(store.as_ref(), "dispatch");
    let report = orchestrate(store.clone(), &in_process(2)).unwrap();
    assert_eq!(report.skipped, 2);
    assert_eq!(report.dispatched, 1, "only the torn shard re-runs");
    assert_eq!(log_count(store.as_ref(), "dispatch"), before + 1);
    assert_eq!(study_bytes(store.as_ref()), sealed_bytes);
}

#[test]
fn a_changed_manifest_invalidates_every_shard() {
    // Resumability is keyed by entry hashes: rewriting the manifest with
    // a different seed must orphan all previous work, not silently reuse
    // traces from the wrong study.
    let cfg = test_cfg();
    let store = planned_store("resume_reseed", &cfg, 2, u32::MAX);
    orchestrate(store.clone(), &in_process(2)).unwrap();

    let mut reseeded = cfg.clone();
    reseeded.seed ^= 0xDEAD_BEEF;
    let manifest = telco_orchestrator::Manifest::plan(
        reseeded,
        &telco_orchestrator::PlanOptions {
            shards: 2,
            scenario: "resume_reseed".into(),
            ..telco_orchestrator::PlanOptions::default()
        },
    )
    .unwrap();
    telco_orchestrator::store_manifest(store.as_ref(), &manifest).unwrap();

    let report = orchestrate(store.clone(), &in_process(2)).unwrap();
    assert!(!report.reused_study, "old study must not be reused for a new seed");
    assert_eq!(report.skipped, 0, "every shard re-runs under the new seed");
    assert_eq!(report.dispatched, 2);
}
