//! Fault-injection harness: each injected failure mode must be
//! *detected* by the parent, the shard re-dispatched, and the final
//! study byte-identical to an uninjected run of the same manifest.
//!
//! The three modes probe different layers of the completion protocol:
//! `crash:K` dies before commit (detected by exit code + missing
//! marker), `truncate` publishes a torn stream under a committed name
//! with a lying marker (detected by stream validation), and `corrupt`
//! flips one byte mid-payload leaving the trailer intact (detected only
//! by the full-read CRC check — the cheap trailer probe passes).

mod common;

use common::*;
use telco_orchestrator::{
    orchestrate, shard_complete, FaultSpec, Launcher, OrchestrateError, OrchestrateOptions,
    PoolOptions, ShardStore,
};

#[test]
fn every_fault_mode_is_detected_and_recovered() {
    let cfg = test_cfg();
    let clean = planned_store("fault_clean", &cfg, 4, u32::MAX);
    orchestrate(clean.clone(), &in_process(2)).unwrap();
    let clean_bytes = study_bytes(clean.as_ref());

    for (tag, fault) in [
        ("crash", FaultSpec::CrashAfterChunks(1)),
        ("truncate", FaultSpec::TruncateTail),
        ("corrupt", FaultSpec::FlipByte),
    ] {
        let store = planned_store(&format!("fault_{tag}"), &cfg, 4, u32::MAX);
        let mut opts = subprocess(2);
        opts.faults = vec![(1, fault)];
        let report = orchestrate(store.clone(), &opts).unwrap_or_else(|e| {
            panic!("fault {tag} was not recovered: {e}");
        });
        assert_eq!(report.retried, 1, "{tag}: exactly the injected shard retries");
        assert_eq!(report.dispatched, 5, "{tag}: 4 first attempts + 1 retry");
        assert_eq!(
            study_bytes(store.as_ref()),
            clean_bytes,
            "{tag}: recovered study must be byte-identical to the uninjected run"
        );
        assert_eq!(log_count(store.as_ref(), "retry"), 1, "{tag}");
        assert_eq!(log_count(store.as_ref(), "complete"), 4, "{tag}");
    }
}

#[test]
fn stalled_worker_is_killed_and_retried() {
    let cfg = test_cfg();
    let clean = planned_store("stall_clean", &cfg, 2, u32::MAX);
    orchestrate(clean.clone(), &in_process(2)).unwrap();

    let store = planned_store("stall", &cfg, 2, u32::MAX);
    let mut opts = subprocess(2);
    opts.pool = PoolOptions { pool_size: 2, timeout_ms: 250, retries: 2, backoff_ms: 5 };
    opts.faults = vec![(0, FaultSpec::Stall(30_000))];
    let report = orchestrate(store.clone(), &opts).unwrap();
    assert!(report.retried >= 1, "stalled worker must be killed and retried");
    assert_eq!(study_bytes(store.as_ref()), study_bytes(clean.as_ref()));
    // The kill shows up as a timeout in the event log.
    let log =
        std::fs::read_to_string(store.local_path(telco_orchestrator::EVENT_LOG).unwrap()).unwrap();
    assert!(log.contains("timed out"), "log records the timeout: {log}");
}

#[test]
fn exhausted_retries_fail_the_run_without_sealing_a_study() {
    let cfg = test_cfg();
    let store = planned_store("fault_exhaust", &cfg, 3, u32::MAX);
    let mut opts = in_process(2);
    opts.pool.retries = 0;
    opts.faults = vec![(2, FaultSpec::CrashAfterChunks(1))];
    match orchestrate(store.clone(), &opts) {
        Err(OrchestrateError::ShardsFailed(failed)) => assert_eq!(failed, vec![2]),
        other => panic!("expected ShardsFailed, got {other:?}"),
    }
    assert!(!store.exists(telco_orchestrator::STUDY_MARKER).unwrap());
    assert!(!store.exists(telco_orchestrator::STUDY_TRACE).unwrap());
    // The healthy shards are complete and will be skipped on resume.
    let manifest = telco_orchestrator::load_manifest(store.as_ref()).unwrap();
    assert!(shard_complete(&manifest, 0, store.as_ref()).is_ok());
    assert!(shard_complete(&manifest, 1, store.as_ref()).is_ok());
    assert!(shard_complete(&manifest, 2, store.as_ref()).is_err());
}

#[test]
fn damage_faults_actually_defeat_the_cheap_probe_layers() {
    // Meta-test of the harness itself: the corrupt fault must produce a
    // shard whose *trailer probe* passes (torn mid-payload byte) while
    // full validation fails — otherwise the suite above would be testing
    // a weaker protocol than it claims.
    let cfg = test_cfg();
    let store = planned_store("fault_meta", &cfg, 2, u32::MAX);
    let manifest = telco_orchestrator::load_manifest(store.as_ref()).unwrap();
    let err =
        telco_orchestrator::run_entry(&manifest, 0, store.as_ref(), Some(FaultSpec::FlipByte))
            .map(|_| ());
    assert!(err.is_ok(), "the corrupt fault exits cleanly — that is the point");
    let path = store.local_path(&telco_orchestrator::trace_name(0)).unwrap();
    assert!(
        telco_trace::probe::probe_trailer(&path).is_ok(),
        "corrupt shard must still carry a valid trailer"
    );
    assert!(telco_trace::probe::validate_file(&path).is_err());
    assert!(shard_complete(&manifest, 0, store.as_ref()).is_err());

    // And the crash fault must leave nothing visible at all.
    let store2 = planned_store("fault_meta2", &cfg, 2, u32::MAX);
    let manifest2 = telco_orchestrator::load_manifest(store2.as_ref()).unwrap();
    let crash = telco_orchestrator::run_entry(
        &manifest2,
        0,
        store2.as_ref(),
        Some(FaultSpec::CrashAfterChunks(1)),
    );
    assert!(matches!(crash, Err(telco_orchestrator::WorkerError::InjectedCrash)));
    assert!(!store2.exists(&telco_orchestrator::trace_name(0)).unwrap());
    assert!(!store2.exists(&telco_orchestrator::marker_name(0)).unwrap());
}

#[test]
fn injected_faults_never_fire_on_retries() {
    // retries=1 is enough for every mode precisely because the fault is
    // first-attempt-only; a fault that re-fired would exhaust the budget.
    let cfg = test_cfg();
    let store = planned_store("fault_once", &cfg, 2, u32::MAX);
    let opts = OrchestrateOptions {
        launcher: Launcher::InProcess,
        pool: PoolOptions { pool_size: 1, retries: 1, backoff_ms: 5, ..PoolOptions::default() },
        faults: vec![(0, FaultSpec::TruncateTail), (1, FaultSpec::FlipByte)],
    };
    let report = orchestrate(store.clone(), &opts).unwrap();
    assert_eq!(report.retried, 2);
}
