//! Manifest schema stability: serialize → parse → re-serialize is the
//! identity, unknown fields are tolerated (forward compatibility), and
//! the canonical JSON form is pinned by a committed golden file.
//!
//! Refresh the golden after an intentional schema change with:
//! `UPDATE_GOLDENS=1 cargo test -p telco-orchestrator --test manifest_roundtrip`

use std::path::Path;

use telco_orchestrator::{Manifest, ManifestError, PlanOptions};
use telco_sim::SimConfig;

fn golden_manifest() -> Manifest {
    // Pinned literals, NOT SimConfig::tiny(): preset drift should fail
    // plan/coverage tests, not silently rewrite the schema golden.
    let mut cfg = SimConfig::tiny();
    cfg.seed = 0x7e1c0;
    cfg.n_ues = 10;
    cfg.n_days = 3;
    cfg.threads = 1;
    Manifest::plan(
        cfg,
        &PlanOptions {
            shards: 3,
            days_per_slice: 2,
            scenario: "golden".into(),
            ..PlanOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn serialize_parse_reserialize_is_identity() {
    let manifest = golden_manifest();
    let json = manifest.to_json();
    let parsed = Manifest::from_json(&json).unwrap();
    assert_eq!(parsed, manifest, "parse must reconstruct the exact manifest");
    assert_eq!(parsed.to_json(), json, "re-serialization must be byte-identical");
    assert_eq!(parsed.manifest_hash(), manifest.manifest_hash());
    for i in 0..manifest.entries.len() {
        assert_eq!(parsed.entry_hash(i), manifest.entry_hash(i));
    }
}

#[test]
fn unknown_fields_are_tolerated_unknown_format_is_not() {
    let manifest = golden_manifest();
    let json = manifest.to_json();

    // A future writer adds top-level and per-entry fields: this parser
    // must ignore them and recover the manifest it understands.
    let extended = json
        .replacen('{', "{\n  \"added_in_v9\": {\"worker_gpus\": 2},", 1)
        .replace("\"index\": 0,", "\"index\": 0,\n      \"entry_annotation\": \"x\",");
    assert_ne!(extended, json);
    let parsed = Manifest::from_json(&extended).expect("unknown fields must parse");
    assert_eq!(parsed, manifest);

    // An unknown format NUMBER is a hard error: field-level tolerance
    // never extends to a schema this build has no contract for.
    let future = json.replacen("\"format\": 1", "\"format\": 99", 1);
    match Manifest::from_json(&future) {
        Err(ManifestError::UnknownFormat(99)) => {}
        other => panic!("expected UnknownFormat(99), got {other:?}"),
    }

    // And garbage is a parse error, not a panic.
    assert!(matches!(Manifest::from_json("{]"), Err(ManifestError::Parse(_))));
    assert!(matches!(Manifest::from_json("{}"), Err(ManifestError::Parse(_))));
}

#[test]
fn canonical_json_matches_committed_golden() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/manifest-v1.json");
    let json = golden_manifest().to_json();
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &json).unwrap();
    }
    let committed = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with UPDATE_GOLDENS=1 to create it");
    assert_eq!(
        json, committed,
        "canonical manifest JSON drifted from tests/goldens/manifest-v1.json; \
         if the schema change is intentional, bump MANIFEST_FORMAT and refresh \
         with UPDATE_GOLDENS=1"
    );
}

#[test]
fn golden_file_itself_round_trips() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/manifest-v1.json");
    let committed = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with UPDATE_GOLDENS=1 to create it");
    let parsed = Manifest::from_json(&committed).unwrap();
    assert_eq!(parsed.to_json(), committed);
    assert_eq!(parsed.planned_ue_days(), 30);
}
