//! Shared fixtures for the orchestrator integration suites.
// Each suite is its own binary and uses a different helper subset.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::Arc;

use telco_orchestrator::{
    store_manifest, DirStore, Launcher, Manifest, OrchestrateOptions, PlanOptions, PoolOptions,
    ShardStore, STUDY_TRACE,
};
use telco_sim::{run_shard, SimConfig, SimOutput, World};
use telco_trace::store::TraceReader;

/// Relative tolerance for ledger sums (repo convention: f64 addition is
/// not associative, so shard-order accumulation may regroup).
pub const LEDGER_RTOL: f64 = 1e-9;

pub fn assert_ledger_close(a: &[f64; 4], b: &[f64; 4], what: &str) {
    for i in 0..4 {
        let tol = LEDGER_RTOL * a[i].abs().max(1.0);
        assert!(
            (a[i] - b[i]).abs() <= tol,
            "{what}[{i}] diverged: {} vs {} (tol {tol})",
            a[i],
            b[i]
        );
    }
}

/// Small-but-nontrivial study config shared by the suites.
pub fn test_cfg() -> SimConfig {
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 120;
    cfg.n_days = 2;
    cfg.threads = 1;
    cfg
}

/// The single-process reference: one full-range shard is exactly the
/// sequential runner (proven in telco-sim's shard test).
pub fn baseline(cfg: &SimConfig) -> SimOutput {
    let world = World::build(cfg);
    run_shard(&world, cfg, 0..cfg.n_days, 0..cfg.n_ues)
}

/// Fresh store under a unique temp dir, with the plan already stored.
pub fn planned_store(
    tag: &str,
    cfg: &SimConfig,
    shards: usize,
    days_per_slice: u32,
) -> Arc<DirStore> {
    let dir = temp_dir(tag);
    let store = DirStore::create(dir).unwrap();
    let manifest = Manifest::plan(
        cfg.clone(),
        &PlanOptions { shards, days_per_slice, scenario: tag.into(), ..PlanOptions::default() },
    )
    .unwrap();
    store_manifest(&store, &manifest).unwrap();
    Arc::new(store)
}

pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("telco_orch_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// In-process fleet with fast retry backoff (tests only).
pub fn in_process(pool_size: usize) -> OrchestrateOptions {
    OrchestrateOptions {
        launcher: Launcher::InProcess,
        pool: PoolOptions { pool_size, backoff_ms: 5, ..PoolOptions::default() },
        faults: Vec::new(),
    }
}

/// Subprocess fleet running the real `telco-worker` binary.
pub fn subprocess(pool_size: usize) -> OrchestrateOptions {
    OrchestrateOptions {
        launcher: Launcher::Subprocess {
            program: PathBuf::from(env!("CARGO_BIN_EXE_telco-worker")),
            prefix: Vec::new(),
        },
        pool: PoolOptions { pool_size, backoff_ms: 5, ..PoolOptions::default() },
        faults: Vec::new(),
    }
}

/// Raw bytes of the sealed study trace.
pub fn study_bytes(store: &dyn ShardStore) -> Vec<u8> {
    std::fs::read(store.local_path(STUDY_TRACE).expect("study trace exists")).unwrap()
}

/// Decoded record stream of the sealed study trace.
pub fn study_dataset(store: &dyn ShardStore) -> telco_trace::dataset::SignalingDataset {
    let path = store.local_path(STUDY_TRACE).expect("study trace exists");
    TraceReader::open(&path).unwrap().read_to_dataset_strict().unwrap()
}

/// Count `"event":"<kind>"` lines in the orchestrator log.
pub fn log_count(store: &dyn ShardStore, kind: &str) -> usize {
    let Some(path) = store.local_path(telco_orchestrator::EVENT_LOG) else { return 0 };
    let log = std::fs::read_to_string(path).unwrap_or_default();
    let needle = format!("\"event\":\"{kind}\"");
    log.lines().filter(|l| l.contains(&needle)).count()
}
