//! Property-based tests of the trace codecs: arbitrary record vectors
//! round-trip losslessly through all three container formats (v1
//! single-buffer, v2 row-chunked, v3 columnar), and arbitrary corruption
//! — truncation anywhere, bit-flips anywhere — yields typed
//! `CodecError`s (or skip-and-report recovery for the chunked formats),
//! never a panic.
//!
//! Regressions found by earlier fuzzing are pinned as plain `#[test]`s at
//! the bottom: the vendored proptest stand-in derives its cases
//! deterministically per seed, so committed regressions live in code, not
//! seed files.

use proptest::prelude::*;

use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;
use telco_trace::dataset::SignalingDataset;
use telco_trace::io::{decode, encode, CodecError, RECORD_BYTES, V1_HEADER_BYTES};
use telco_trace::record::{HoOutcome, HoRecord};
use telco_trace::store::{TraceReader, TraceWriter, VERSION2, VERSION3};

fn arb_rat() -> impl Strategy<Value = Rat> {
    prop_oneof![Just(Rat::G2), Just(Rat::G3), Just(Rat::G4), Just(Rat::G5Nr)]
}

fn arb_record() -> impl Strategy<Value = HoRecord> {
    (
        0u64..(28 * 86_400_000),
        0u32..1_000_000,
        0u32..500_000,
        0u32..500_000,
        arb_rat(),
        arb_rat(),
        proptest::bool::ANY,
        1u16..1050,
        0.0f32..20_000.0,
        proptest::bool::ANY,
        0u16..40,
    )
        .prop_map(
            |(ts, ue, src, tgt, source_rat, target_rat, failed, cause, dur, srvcc, msgs)| {
                HoRecord {
                    timestamp_ms: ts,
                    ue: UeId(ue),
                    source_sector: SectorId(src),
                    target_sector: SectorId(tgt),
                    source_rat,
                    target_rat,
                    outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                    cause: failed.then_some(CauseCode(cause)),
                    duration_ms: dur,
                    srvcc,
                    messages: msgs,
                }
            },
        )
}

/// Encode into a chunked container at the given version, splitting the
/// records over chunks of `chunk_len` so frame boundaries land in
/// arbitrary places.
fn encode_chunked(dataset: &SignalingDataset, chunk_len: usize, version: u16) -> Vec<u8> {
    let mut w = TraceWriter::with_version(Vec::new(), dataset.days, version).unwrap();
    for chunk in dataset.records().chunks(chunk_len.max(1)) {
        w.write_chunk(chunk).unwrap();
    }
    w.finish().unwrap()
}

fn encode_v2(dataset: &SignalingDataset, chunk_len: usize) -> Vec<u8> {
    encode_chunked(dataset, chunk_len, VERSION2)
}

fn encode_v3(dataset: &SignalingDataset, chunk_len: usize) -> Vec<u8> {
    encode_chunked(dataset, chunk_len, VERSION3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v1_roundtrips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let dataset = SignalingDataset::from_records(28, records);
        let decoded = decode(encode(&dataset)).expect("valid v1 frames decode");
        prop_assert_eq!(dataset, decoded);
    }

    #[test]
    fn v2_roundtrips_any_chunking(
        records in proptest::collection::vec(arb_record(), 0..200),
        chunk_len in 1usize..64,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let bytes = encode_v2(&dataset, chunk_len);
        let mut reader = TraceReader::new(&bytes[..]).expect("valid v2 header");
        let decoded = reader.read_to_dataset_strict().expect("valid v2 frames decode");
        prop_assert_eq!(&dataset, &decoded);
        prop_assert!(reader.trailer_seen());
        prop_assert!(reader.issues().is_empty());
    }

    #[test]
    fn v3_roundtrips_any_chunking(
        records in proptest::collection::vec(arb_record(), 0..200),
        chunk_len in 1usize..64,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let bytes = encode_v3(&dataset, chunk_len);
        let mut reader = TraceReader::new(&bytes[..]).expect("valid v3 header");
        let decoded = reader.read_to_dataset_strict().expect("valid v3 frames decode");
        prop_assert_eq!(&dataset, &decoded);
        prop_assert!(reader.trailer_seen());
        prop_assert!(reader.issues().is_empty());
    }

    #[test]
    fn v3_bit_flips_never_panic_and_are_detected(
        records in proptest::collection::vec(arb_record(), 1..80),
        chunk_len in 1usize..32,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let clean = encode_v3(&dataset, chunk_len);
        let mut raw = clean.clone();
        let pos = ((byte_frac * raw.len() as f64) as usize).min(raw.len() - 1);
        raw[pos] ^= 1 << bit;
        match TraceReader::new(&raw[..]) {
            Err(_) => {} // header flip: typed error at open
            Ok(mut reader) => {
                let recovered = reader.read_to_dataset();
                // Every v3 byte is covered by a payload CRC, the
                // length-checked frame header, or the sealed trailer —
                // a flip anywhere must be *detected*, same as v2.
                prop_assert!(
                    !reader.issues().is_empty(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
                // Recovery only ever loses whole chunks.
                prop_assert!(recovered.len() <= dataset.len());
            }
        }
    }

    #[test]
    fn v3_truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..80),
        chunk_len in 1usize..32,
        cut_frac in 0.0f64..1.0,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let clean = encode_v3(&dataset, chunk_len);
        let cut = (cut_frac * clean.len() as f64) as usize;
        if cut >= clean.len() {
            return Ok(());
        }
        match TraceReader::new(&clean[..cut]) {
            Err(e) => prop_assert!(matches!(e, CodecError::Truncated | CodecError::BadMagic)),
            Ok(mut reader) => {
                let recovered = reader.read_to_dataset();
                prop_assert!(!reader.issues().is_empty(), "silent truncation at {cut}");
                prop_assert!(recovered.len() <= dataset.len());
                prop_assert!(!reader.trailer_seen());
            }
        }
    }

    #[test]
    fn v2_and_v3_decode_identically(
        records in proptest::collection::vec(arb_record(), 0..120),
        chunk_len in 1usize..48,
    ) {
        // The two chunked containers are different encodings of the same
        // stream: any record vector must survive both bit-exactly.
        let dataset = SignalingDataset::from_records(28, records);
        let v2 = encode_v2(&dataset, chunk_len);
        let v3 = encode_v3(&dataset, chunk_len);
        let a = TraceReader::new(&v2[..]).unwrap().read_to_dataset_strict().expect("v2");
        let b = TraceReader::new(&v3[..]).unwrap().read_to_dataset_strict().expect("v3");
        prop_assert_eq!(&a, &b);
    }

    #[test]
    fn v1_truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..50),
        cut_frac in 0.0f64..1.0,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let full = encode(&dataset);
        let cut = (cut_frac * full.len() as f64) as usize;
        if cut < full.len() {
            // Any strict prefix must decode to a typed error, not the
            // original (data was lost) and never a panic.
            let err = decode(full.slice(0..cut)).expect_err("truncation must error");
            prop_assert!(matches!(
                err,
                CodecError::Truncated | CodecError::BadMagic | CodecError::BadVersion(_)
            ));
        }
    }

    #[test]
    fn v1_bit_flips_never_panic(
        records in proptest::collection::vec(arb_record(), 1..50),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let mut raw = encode(&dataset).to_vec();
        let pos = ((byte_frac * raw.len() as f64) as usize).min(raw.len() - 1);
        raw[pos] ^= 1 << bit;
        // v1 has no checksum: a flip may decode to different-but-valid
        // records. The property is the absence of panics and, on error,
        // a typed CodecError.
        let _ = decode(bytes::Bytes::from(raw));
    }

    #[test]
    fn v2_bit_flips_never_panic_and_are_detected(
        records in proptest::collection::vec(arb_record(), 1..80),
        chunk_len in 1usize..32,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let clean = encode_v2(&dataset, chunk_len);
        let mut raw = clean.clone();
        let pos = ((byte_frac * raw.len() as f64) as usize).min(raw.len() - 1);
        raw[pos] ^= 1 << bit;
        match TraceReader::new(&raw[..]) {
            Err(_) => {} // header flip: typed error at open
            Ok(mut reader) => {
                let recovered = reader.read_to_dataset();
                // Unlike v1, every v2 byte is covered by a CRC (chunk
                // payloads), a self-check (trailer), or framing
                // validation — a flip anywhere must be *detected*.
                prop_assert!(
                    !reader.issues().is_empty(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
                // Recovery only ever loses whole chunks.
                prop_assert!(recovered.len() <= dataset.len());
            }
        }
    }

    #[test]
    fn v2_truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..80),
        chunk_len in 1usize..32,
        cut_frac in 0.0f64..1.0,
    ) {
        let dataset = SignalingDataset::from_records(28, records);
        let clean = encode_v2(&dataset, chunk_len);
        let cut = (cut_frac * clean.len() as f64) as usize;
        if cut >= clean.len() {
            return Ok(());
        }
        match TraceReader::new(&clean[..cut]) {
            Err(e) => prop_assert!(matches!(e, CodecError::Truncated | CodecError::BadMagic)),
            Ok(mut reader) => {
                let recovered = reader.read_to_dataset();
                // A strict prefix always loses the trailer (and possibly
                // more): the reader must report it, and recovered records
                // must be a prefix-closed subset decoded from intact
                // chunks only.
                prop_assert!(!reader.issues().is_empty(), "silent truncation at {cut}");
                prop_assert!(recovered.len() <= dataset.len());
                prop_assert!(!reader.trailer_seen());
            }
        }
    }
}

// ---- committed regressions -------------------------------------------------
// Each was a real failure mode found while fuzzing the codecs; kept as
// plain tests so they run on every seed.

/// A flipped v1 count field must not overflow `count * RECORD_BYTES` or
/// drive a giant allocation (found via truncation fuzzing; the original
/// decode multiplied before checking).
#[test]
fn regression_v1_count_overflow() {
    let mut raw = encode(&SignalingDataset::new(28)).to_vec();
    for b in &mut raw[10..18] {
        *b = 0xFF; // count = u64::MAX
    }
    assert_eq!(decode(bytes::Bytes::from(raw)).unwrap_err(), CodecError::Truncated);
}

/// A v2 chunk whose count field is flipped to an absurd value must be
/// treated as corruption and resynced past, not allocated.
#[test]
fn regression_v2_count_flip_resyncs() {
    let dataset = SignalingDataset::from_records(
        1,
        vec![HoRecord {
            timestamp_ms: 1,
            ue: UeId(1),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: Rat::G4,
            outcome: HoOutcome::Success,
            cause: None,
            duration_ms: 10.0,
            srvcc: false,
            messages: 8,
        }],
    );
    let mut raw = encode_v2(&dataset, 1);
    // Chunk count field sits after the 10-byte header + 4 magic + 4 seq.
    for b in &mut raw[18..22] {
        *b = 0xFF;
    }
    let mut reader = TraceReader::new(&raw[..]).unwrap();
    let recovered = reader.read_to_dataset();
    assert!(recovered.is_empty());
    assert!(reader.issues().iter().any(|i| i.error == CodecError::BadField("record_count")));
}

/// Truncating exactly at a frame boundary (trailer dropped, all chunks
/// intact) must still be reported: the trailer is the tamper seal.
#[test]
fn regression_v2_boundary_truncation_detected() {
    let records: Vec<HoRecord> = (0..10)
        .map(|i| HoRecord {
            timestamp_ms: i,
            ue: UeId(i as u32),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: Rat::G4,
            outcome: HoOutcome::Success,
            cause: None,
            duration_ms: 5.0,
            srvcc: false,
            messages: 4,
        })
        .collect();
    let dataset = SignalingDataset::from_records(1, records);
    let raw = encode_v2(&dataset, 10);
    let cut = &raw[..raw.len() - 20]; // drop exactly the trailer
    let mut reader = TraceReader::new(cut).unwrap();
    let recovered = reader.read_to_dataset();
    assert_eq!(recovered.len(), 10, "intact chunks still decode");
    assert_eq!(reader.issues().len(), 1);
    assert_eq!(reader.issues()[0].error, CodecError::MissingTrailer);
}

fn plain_record(ts: u64) -> HoRecord {
    HoRecord {
        timestamp_ms: ts,
        ue: UeId(7),
        source_sector: SectorId(40),
        target_sector: SectorId(41),
        source_rat: Rat::G4,
        target_rat: Rat::G4,
        outcome: HoOutcome::Success,
        cause: None,
        duration_ms: 12.5,
        srvcc: false,
        messages: 6,
    }
}

/// Timestamps may regress *within* a chunk (merge tails, clock skew): the
/// v3 delta column uses wrapping signed deltas, so non-monotone and
/// u64-extreme values must survive bit-exactly. An early draft used
/// saturating deltas and silently flattened regressions.
#[test]
fn regression_v3_timestamp_regression_within_chunk_roundtrips() {
    let ts = [5u64, 3, 10, u64::MAX, 0, u64::MAX / 2, 7];
    let records: Vec<HoRecord> = ts.iter().map(|&t| plain_record(t)).collect();
    let mut w = TraceWriter::with_version(Vec::new(), 1, VERSION3).unwrap();
    w.write_chunk(&records).unwrap();
    let bytes = w.finish().unwrap();
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let mut out = Vec::new();
    assert!(reader.next_chunk_into(&mut out).expect("one chunk").is_ok());
    assert_eq!(out, records, "timestamp order or extremes drifted");
    assert!(reader.next_chunk_into(&mut out).is_none());
    assert!(reader.trailer_seen());
}

/// A corrupted dictionary length claiming more entries than the chunk has
/// records must be rejected as a typed decode error (and the chunk
/// skipped), never trusted as an allocation size. The payload CRC is
/// recomputed so the corruption reaches the column decoder itself.
#[test]
fn regression_v3_dictionary_overflow_rejected() {
    let mut raw = {
        let mut w = TraceWriter::with_version(Vec::new(), 1, VERSION3).unwrap();
        w.write_chunk(&[plain_record(1)]).unwrap();
        w.finish().unwrap()
    };
    // Layout: 10-byte stream header, then the v3 frame:
    // magic 10..14 | seq 14..18 | count 18..22 | payload_len 22..26 |
    // crc 26..30 | payload.
    let payload_len = u32::from_be_bytes(raw[22..26].try_into().unwrap()) as usize;
    let (payload_start, payload_end) = (30, 30 + payload_len);
    // Walk the column groups (u8 id | u32 len BE | body) to the source
    // sector dictionary (column id 2).
    let mut p = payload_start;
    while raw[p] != 2 {
        let len = u32::from_be_bytes(raw[p + 1..p + 5].try_into().unwrap()) as usize;
        p += 5 + len;
    }
    // Body starts with the dict-length varint; one record → one byte.
    assert_eq!(raw[p + 5], 1, "expected a single-entry dictionary");
    raw[p + 5] = 0x7F; // dict_len = 127 > record count of 1
    let crc = telco_trace::crc32::crc32(&raw[payload_start..payload_end]);
    raw[26..30].copy_from_slice(&crc.to_be_bytes());

    let mut reader = TraceReader::new(&raw[..]).unwrap();
    let recovered = reader.read_to_dataset();
    assert!(recovered.is_empty(), "overflowing dictionary chunk must be skipped");
    assert!(
        reader.issues().iter().any(|i| matches!(i.error, CodecError::BadField(_))),
        "dictionary overflow not reported as a typed field error: {:?}",
        reader.issues()
    );
}

/// Empty chunks produce empty columns everywhere (zero-length deltas,
/// zero-entry dictionaries, zero-width bit-packs); they must frame and
/// decode cleanly when interleaved with data chunks.
#[test]
fn regression_v3_empty_chunks_roundtrip() {
    let mut w = TraceWriter::with_version(Vec::new(), 1, VERSION3).unwrap();
    w.write_chunk(&[]).unwrap();
    w.write_chunk(&[plain_record(10), plain_record(20)]).unwrap();
    w.write_chunk(&[]).unwrap();
    let bytes = w.finish().unwrap();
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let decoded = reader.read_to_dataset_strict().expect("empty columns decode");
    assert_eq!(decoded.len(), 2);
    assert!(reader.trailer_seen());
    assert!(reader.issues().is_empty());
}

/// The v1 record-frame layout is the byte-level contract both containers
/// share; a drift here would silently invalidate every stored trace.
#[test]
fn regression_record_frame_layout_is_stable() {
    let r = HoRecord {
        timestamp_ms: 0x0102_0304_0506_0708,
        ue: UeId(0x0A0B_0C0D),
        source_sector: SectorId(0x1112_1314),
        target_sector: SectorId(0x2122_2324),
        source_rat: Rat::G4,
        target_rat: Rat::G3,
        outcome: HoOutcome::Failure,
        cause: Some(CauseCode(0x0405)),
        duration_ms: 1.5,
        srvcc: true,
        messages: 0x0607,
    };
    let d = SignalingDataset::from_records(1, vec![r]);
    let bytes = encode(&d);
    assert_eq!(bytes.len(), V1_HEADER_BYTES + RECORD_BYTES);
    let frame = &bytes[V1_HEADER_BYTES..];
    assert_eq!(&frame[0..8], &[1, 2, 3, 4, 5, 6, 7, 8]); // timestamp BE
    assert_eq!(&frame[8..12], &[0x0A, 0x0B, 0x0C, 0x0D]); // ue
    assert_eq!(frame[20], Rat::G4.index() as u8); // source rat
    assert_eq!(frame[21], Rat::G3.index() as u8); // target rat
    assert_eq!(frame[22], 0b11); // failure | srvcc flags
    assert_eq!(&frame[24..26], &[0x04, 0x05]); // cause BE
    assert_eq!(&frame[26..28], &[0x06, 0x07]); // messages BE
}
