//! Exhaustive model checking of the bounded frame ring
//! ([`telco_trace::prefetch::FrameQueue`]) under loom.
//!
//! Only compiled with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p telco-trace --test loom_prefetch --release
//! ```
//!
//! Under `--cfg loom` the queue is built on the vendored loom's
//! scheduler-parked `Mutex`/`Condvar`/`AtomicU64`, so `loom::model`
//! replays each closure under *every* interleaving of the queue's lock,
//! wait, notify, and end-marker operations. The properties proved (for
//! the modelled sizes):
//!
//! - frames hand off through a one-slot ring in index order, with
//!   backpressure (the producer parks while the slot is full), under
//!   every schedule;
//! - `finish` wakes a waiter blocked on a never-published index — the
//!   take-the-slot-lock-before-notify protocol admits no lost wakeup,
//!   and the `end` store/load pair always bounds the stream correctly;
//! - `fail` wakes waiters, keeps already-published frames deliverable,
//!   and surfaces the issue to the coordinator;
//! - a canary shows the explorer *does* catch the lost-wakeup bug the
//!   finish protocol is written against, so the passing tests above are
//!   evidence and not vacuity.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use telco_trace::io::CodecError;
use telco_trace::prefetch::{Frame, FrameQueue};
use telco_trace::store::ChunkIssue;

fn frame(index: u64) -> Frame {
    Frame { index, count: 1, payload: vec![index as u8] }
}

/// Producer and consumer share a one-slot ring: every frame arrives, in
/// order, with the slot reused between them — under every schedule.
#[test]
fn frames_hand_off_in_order_through_one_slot() {
    loom::model(|| {
        let queue = Arc::new(FrameQueue::new(1));
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                queue.push(frame(0));
                queue.push(frame(1));
                queue.finish(2);
            })
        };
        for i in 0..2u64 {
            let f = queue.take(i).expect("frame must arrive");
            assert_eq!(f.index, i);
            assert_eq!(f.payload, vec![i as u8]);
        }
        assert!(queue.take(2).is_none(), "past the end is None");
        producer.join().expect("producer");
        assert!(queue.take_error().is_none());
    });
}

/// The shutdown race: a waiter parked on an index the stream never
/// reaches must always be woken by `finish` — whichever side gets to
/// the slot first.
#[test]
fn finish_wakes_a_waiter_with_no_frame() {
    loom::model(|| {
        let queue = Arc::new(FrameQueue::new(1));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.take(0))
        };
        queue.finish(0);
        assert!(waiter.join().expect("waiter").is_none(), "waiter unblocks past the end");
    });
}

/// An aborting reader wakes waiters, keeps frame 0 deliverable, and
/// hands the coordinator the issue — under every schedule.
#[test]
fn fail_unblocks_waiters_and_surfaces_the_issue() {
    loom::model(|| {
        let queue = Arc::new(FrameQueue::new(1));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.take(1))
        };
        queue.push(frame(0));
        queue.fail(
            1,
            ChunkIssue {
                chunk: 1,
                offset: 99,
                error: CodecError::Io(std::io::ErrorKind::UnexpectedEof),
            },
        );
        assert!(waiter.join().expect("waiter").is_none(), "waiter past the abort unblocks");
        assert_eq!(queue.take(0).expect("frame 0 stays deliverable").index, 0);
        let issue = queue.take_error().expect("issue recorded");
        assert_eq!(issue.chunk, 1);
    });
}

/// The bug `finish` is written against: storing the end marker and
/// notifying *without* taking the slot lock lets a waiter slip between
/// its end-check and its sleep, and the wakeup is lost. The explorer
/// must find that interleaving (reported as a model deadlock) — proof
/// the passing tests above are not vacuous.
#[test]
fn canary_finish_without_slot_lock_loses_a_wakeup() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::{Condvar, Mutex, PoisonError};
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let slot = Arc::new((Mutex::new(()), Condvar::new(), AtomicU64::new(u64::MAX)));
            let waiter = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let (lock, ready, end) = &*slot;
                    let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    while end.load(Ordering::Acquire) == u64::MAX {
                        guard = ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
                    }
                })
            };
            let (_, ready, end) = &*slot;
            // Broken on purpose: the real finish() takes each slot lock
            // between these two lines.
            end.store(0, Ordering::Release);
            ready.notify_all();
            waiter.join().expect("waiter");
        });
    });
    assert!(result.is_err(), "explorer must find the lost-wakeup interleaving");
}
