//! Where a study's handover records live: the [`TraceSource`]
//! abstraction over an in-memory [`SignalingDataset`] and a spilled v2
//! trace file on disk.
//!
//! Every analysis traversal goes through this type, which instruments
//! the two contracts the analytics layer is built on:
//!
//! - **one shared sweep** — [`TraceSource::sweeps`] counts record
//!   traversals, so tests can assert that a full study scans the trace
//!   once instead of once per analysis;
//! - **bounded memory on the spilled path** — [`TraceSource::for_each_chunk`]
//!   streams a spilled trace chunk-by-chunk through a reused buffer and
//!   never materializes a full-trace `Vec<HoRecord>`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::columnar::ColumnBatch;
use crate::dataset::SignalingDataset;
use crate::record::HoRecord;
use crate::store::{ChunkIssue, TraceReader};

/// Records per column batch when transposing an in-memory dataset for
/// the columnar sweep: large enough to amortize the per-batch pass
/// fan-out, small enough that a batch's hot columns stay cache-resident
/// while ~15 passes scan it (~31 B/record across all columns → ~500 KiB
/// per batch).
pub const COLUMN_BATCH_RECORDS: usize = 1 << 14;

/// A sealed v2 trace file on disk, with the span and record count its
/// trailer declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpilledTrace {
    /// The v2 trace file.
    pub path: PathBuf,
    /// Study-day span of the trace.
    pub days: u32,
    /// Total records in the trace.
    pub records: u64,
}

#[derive(Debug)]
enum SourceKind {
    InMemory(SignalingDataset),
    Spilled(SpilledTrace),
}

/// The record store behind a study: either the in-memory dataset the
/// runner produced, or a spilled v2 trace streamed from disk. Carries a
/// traversal counter so the "one shared sweep" contract is testable.
#[derive(Debug)]
pub struct TraceSource {
    kind: SourceKind,
    sweeps: AtomicU64,
    /// Column batches served by the fast path ([`TraceSource::for_each_columns`]
    /// or an external columnar pipeline that reports via
    /// [`TraceSource::note_column_batches`]) — lets benchmarks assert the
    /// columnar path was exercised rather than silently falling back to
    /// rows.
    column_batches: AtomicU64,
}

// telco-lint: audited-atomics(begin): `sweeps` and `column_batches` are monotonic instrumentation counters —
// nothing synchronizes through them. Relaxed RMWs on a single location are totally ordered, and the tests
// that assert on the totals read them after every traversal thread has joined (a happens-before edge the
// join itself provides), so no stronger ordering would change any observable count.
impl Clone for TraceSource {
    fn clone(&self) -> Self {
        TraceSource {
            kind: match &self.kind {
                SourceKind::InMemory(d) => SourceKind::InMemory(d.clone()),
                SourceKind::Spilled(s) => SourceKind::Spilled(s.clone()),
            },
            sweeps: AtomicU64::new(self.sweeps.load(Ordering::Relaxed)),
            column_batches: AtomicU64::new(self.column_batches.load(Ordering::Relaxed)),
        }
    }
}

impl TraceSource {
    /// A source serving records from memory.
    pub fn in_memory(dataset: SignalingDataset) -> Self {
        TraceSource {
            kind: SourceKind::InMemory(dataset),
            sweeps: AtomicU64::new(0),
            column_batches: AtomicU64::new(0),
        }
    }

    /// A source streaming records from a sealed v2 trace file.
    pub fn spilled(path: impl Into<PathBuf>, days: u32, records: u64) -> Self {
        TraceSource {
            kind: SourceKind::Spilled(SpilledTrace { path: path.into(), days, records }),
            sweeps: AtomicU64::new(0),
            column_batches: AtomicU64::new(0),
        }
    }

    /// Study-day span of the trace.
    pub fn days(&self) -> u32 {
        match &self.kind {
            SourceKind::InMemory(d) => d.days,
            SourceKind::Spilled(s) => s.days,
        }
    }

    /// Total records (for a spilled source, the count its trailer sealed).
    pub fn len(&self) -> u64 {
        match &self.kind {
            SourceKind::InMemory(d) => d.len() as u64,
            SourceKind::Spilled(s) => s.records,
        }
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether records live on disk rather than in memory.
    pub fn is_spilled(&self) -> bool {
        matches!(self.kind, SourceKind::Spilled(_))
    }

    /// The backing file of a spilled source.
    pub fn spill_path(&self) -> Option<&Path> {
        match &self.kind {
            SourceKind::InMemory(_) => None,
            SourceKind::Spilled(s) => Some(&s.path),
        }
    }

    /// The in-memory dataset, if this source holds one.
    pub fn as_dataset(&self) -> Option<&SignalingDataset> {
        match &self.kind {
            SourceKind::InMemory(d) => Some(d),
            SourceKind::Spilled(_) => None,
        }
    }

    /// Average records per day.
    pub fn daily_mean(&self) -> f64 {
        let days = self.days();
        if days == 0 {
            return 0.0;
        }
        self.len() as f64 / days as f64
    }

    /// How many record traversals this source has served — the number
    /// the scan-count regression asserts on.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// How many column batches the fast path has served (0 means every
    /// traversal went through materialized rows).
    pub fn column_batches(&self) -> u64 {
        self.column_batches.load(Ordering::Relaxed)
    }

    /// Record one traversal performed by an external pipeline (e.g. the
    /// parallel out-of-core sweep, which opens its own reader instead of
    /// going through [`TraceSource::for_each_chunk`]).
    pub fn note_sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` column batches decoded by an external pipeline.
    pub fn note_column_batches(&self, n: u64) {
        self.column_batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Traverse the trace once, in timestamp order, handing `f` one
    /// decoded [`ColumnBatch`] at a time — the native input of the
    /// columnar analysis sweep. A spilled v3 source decodes straight
    /// into the batch (no per-record row construction); a spilled v2
    /// source transposes rows into the same shape; an in-memory source
    /// transposes fixed-size record windows through one reused batch.
    /// Error semantics match [`TraceSource::for_each_chunk`]: damaged
    /// chunks are skipped, I/O failure aborts.
    pub fn for_each_columns(&self, mut f: impl FnMut(&ColumnBatch)) -> Result<(), ChunkIssue> {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let mut batches = 0u64;
        let result = match &self.kind {
            SourceKind::InMemory(d) => {
                let mut batch = ColumnBatch::new();
                for window in d.records().chunks(COLUMN_BATCH_RECORDS) {
                    batch.clear();
                    batch.extend_from_rows(window);
                    batches += 1;
                    f(&batch);
                }
                Ok(())
            }
            SourceKind::Spilled(s) => {
                let open = |e| ChunkIssue { chunk: 0, offset: 0, error: e };
                let mut reader = TraceReader::open(&s.path).map_err(open)?;
                let mut batch = ColumnBatch::new();
                loop {
                    match reader.next_chunk_columns(&mut batch) {
                        None => break Ok(()),
                        Some(Ok(())) => {
                            batches += 1;
                            f(&batch);
                        }
                        // Skip-and-report recovery: corruption already
                        // cost exactly one chunk; an I/O error means the
                        // medium itself failed, so abort.
                        Some(Err(issue)) if matches!(issue.error, crate::io::CodecError::Io(_)) => {
                            break Err(issue)
                        }
                        Some(Err(_)) => {}
                    }
                }
            }
        };
        self.column_batches.fetch_add(batches, Ordering::Relaxed);
        result
    }

    /// Traverse the trace once, in timestamp order, handing `f` one
    /// decoded chunk at a time. An in-memory source yields its records
    /// as one borrowed slice; a spilled source streams chunk-by-chunk
    /// through a reused buffer with bounded memory. Damaged chunks in a
    /// spilled trace are skipped (already recorded by the writer-side
    /// checks); only an underlying I/O failure aborts the traversal.
    pub fn for_each_chunk(&self, mut f: impl FnMut(&[HoRecord])) -> Result<(), ChunkIssue> {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        match &self.kind {
            SourceKind::InMemory(d) => {
                f(d.records());
                Ok(())
            }
            SourceKind::Spilled(s) => {
                let open = |e| ChunkIssue { chunk: 0, offset: 0, error: e };
                let mut reader = TraceReader::open(&s.path).map_err(open)?;
                let mut buf: Vec<HoRecord> = Vec::new();
                while let Some(chunk) = reader.next_chunk_into(&mut buf) {
                    match chunk {
                        Ok(()) => f(&buf),
                        // Skip-and-report recovery: corruption already
                        // cost exactly one chunk; an I/O error means the
                        // medium itself failed, so abort.
                        Err(issue) if matches!(issue.error, crate::io::CodecError::Io(_)) => {
                            return Err(issue)
                        }
                        Err(_) => {}
                    }
                }
                Ok(())
            }
        }
    }

    /// Per-day record slices for the parallel sweep: slice `d` holds the
    /// records of study day `d` (the final slice also absorbs any
    /// overflow past the configured span, so every record is covered).
    /// Counts as one traversal. `None` for a spilled source — streaming
    /// traces are swept sequentially.
    pub fn day_slices(&self, n_days: u32) -> Option<Vec<&[HoRecord]>> {
        let dataset = self.as_dataset()?;
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let records = dataset.records();
        let n = n_days.max(1);
        let mut slices = Vec::with_capacity(n as usize);
        let mut start = 0usize;
        for day in 1..n {
            // Records are timestamp-sorted, so day boundaries are the
            // partition points of the monotone `day()` key.
            let end = start
                + records.get(start..).map_or(0, |tail| tail.partition_point(|r| r.day() < day));
            slices.push(records.get(start..end).unwrap_or(&[]));
            start = end;
        }
        slices.push(records.get(start..).unwrap_or(&[]));
        Some(slices)
    }
}
// telco-lint: audited-atomics(end)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HoOutcome;
    use crate::store::write_file_v2;
    use telco_devices::population::UeId;
    use telco_topology::elements::SectorId;
    use telco_topology::rat::Rat;

    fn rec(ts: u64, ue: u32) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: Rat::G4,
            outcome: HoOutcome::Success,
            cause: None,
            duration_ms: 50.0,
            srvcc: false,
            messages: 12,
        }
    }

    fn sample(days: u32, n: u64) -> SignalingDataset {
        let records =
            (0..n).map(|i| rec(i * 7_000_000 % (days as u64 * 86_400_000), i as u32)).collect();
        SignalingDataset::from_records(days, records)
    }

    #[test]
    fn in_memory_chunks_cover_everything_and_count_sweeps() {
        let d = sample(2, 100);
        let src = TraceSource::in_memory(d.clone());
        assert_eq!(src.sweeps(), 0);
        let mut seen = 0u64;
        src.for_each_chunk(|recs| seen += recs.len() as u64).unwrap();
        assert_eq!(seen, 100);
        assert_eq!(src.sweeps(), 1);
        assert_eq!(src.len(), 100);
        assert_eq!(src.days(), 2);
        assert!(!src.is_spilled());
        assert_eq!(src.as_dataset(), Some(&d));
    }

    #[test]
    fn spilled_chunks_match_in_memory() {
        let d = sample(3, 500);
        let dir = std::env::temp_dir().join("telco_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tlho");
        write_file_v2(&d, &path).unwrap();
        let src = TraceSource::spilled(&path, 3, d.len() as u64);
        assert!(src.is_spilled());
        assert_eq!(src.len(), d.len() as u64);
        let mut streamed = Vec::new();
        src.for_each_chunk(|recs| streamed.extend_from_slice(recs)).unwrap();
        assert_eq!(&streamed[..], d.records());
        assert_eq!(src.sweeps(), 1);
        assert!(src.day_slices(3).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn day_slices_partition_the_trace() {
        let d = sample(3, 300);
        let src = TraceSource::in_memory(d.clone());
        let slices = src.day_slices(3).unwrap();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices.iter().map(|s| s.len()).sum::<usize>(), 300);
        for (day, slice) in slices.iter().enumerate() {
            assert!(slice.iter().all(|r| r.day() as usize == day));
        }
        let flat: Vec<HoRecord> = slices.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(&flat[..], d.records());
        assert_eq!(src.sweeps(), 1);
    }

    #[test]
    fn clone_preserves_counter_value() {
        let src = TraceSource::in_memory(sample(1, 10));
        src.for_each_chunk(|_| {}).unwrap();
        let cloned = src.clone();
        assert_eq!(cloned.sweeps(), 1);
    }

    #[test]
    fn column_traversal_matches_rows_in_memory_and_spilled() {
        let d = sample(3, 40_000); // > COLUMN_BATCH_RECORDS → several batches
        let dir = std::env::temp_dir().join("telco_source_columns_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tlho");
        crate::store::write_file_v3(&d, &path).unwrap();

        for src in
            [TraceSource::in_memory(d.clone()), TraceSource::spilled(&path, 3, d.len() as u64)]
        {
            assert_eq!(src.column_batches(), 0);
            let mut streamed = Vec::new();
            src.for_each_columns(|batch| streamed.extend(batch.rows())).unwrap();
            assert_eq!(&streamed[..], d.records());
            assert_eq!(src.sweeps(), 1);
            assert!(src.column_batches() > 0, "fast-path counter must tick");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_pipeline_counters() {
        let src = TraceSource::in_memory(sample(1, 10));
        src.note_sweep();
        src.note_column_batches(3);
        assert_eq!(src.sweeps(), 1);
        assert_eq!(src.column_batches(), 3);
    }
}
