//! Trace serialization: a compact binary codec plus JSON export.
//!
//! The operator's daily trace weighs ≈8 TB (§3.1, Table 1); even at
//! simulation scale a run produces millions of rows, so the binary format
//! packs each record into a fixed 36-byte frame. Two container formats
//! share that record layout: the v1 single-buffer format ([`encode`] /
//! [`decode`], this module) and the v2 chunked streaming store
//! ([`crate::store`]). JSON export serves human inspection and downstream
//! tooling.

// telco-lint: deny-swallowed-errors

use bytes::{Buf, BufMut, Bytes, BytesMut};

use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;

use crate::dataset::SignalingDataset;
use crate::record::{HoOutcome, HoRecord};

/// Magic bytes opening a binary trace (any version).
pub const MAGIC: [u8; 4] = *b"TLHO";
/// The single-buffer format version this module encodes.
pub const VERSION: u16 = 1;
/// Bytes per encoded record (same layout in v1 and v2).
pub const RECORD_BYTES: usize = 36;
/// Bytes of the v1 header: magic + version + days + record count.
pub const V1_HEADER_BYTES: usize = 18;

/// Errors from decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than its header or declared payload.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// A field held an invalid enumeration value.
    BadField(&'static str),
    /// A v2 chunk frame opened with neither the chunk nor the trailer
    /// magic — the stream lost framing (the reader resyncs by scanning).
    BadChunkMagic,
    /// A v2 chunk payload failed its CRC32 check.
    ChecksumMismatch {
        /// Checksum stored in the chunk header.
        stored: u32,
        /// Checksum computed over the payload as read.
        computed: u32,
    },
    /// A v2 stream ended without its trailer frame (e.g. a writer crashed
    /// before [`crate::store::TraceWriter::finish`]).
    MissingTrailer,
    /// The v2 trailer disagrees with the stream: its own CRC failed, or
    /// its totals do not match the chunks actually read.
    TrailerMismatch,
    /// The underlying reader failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "trace truncated"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::BadField(name) => write!(f, "invalid field value: {name}"),
            CodecError::BadChunkMagic => write!(f, "bad chunk magic (framing lost)"),
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "chunk checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CodecError::MissingTrailer => write!(f, "stream ended without a trailer frame"),
            CodecError::TrailerMismatch => write!(f, "trailer does not match the stream"),
            CodecError::Io(kind) => write!(f, "read failed: {kind:?}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn rat_code(rat: Rat) -> u8 {
    rat.index() as u8
}

fn rat_from(code: u8) -> Result<Rat, CodecError> {
    Rat::ALL.get(code as usize).copied().ok_or(CodecError::BadField("rat"))
}

/// Encode one record into its fixed 36-byte frame on the stack. The hot
/// write loops append this with a single `extend_from_slice` — one
/// capacity check per record instead of one per field, which is what
/// closed the chunked-writer-vs-v1 throughput gap once the CRC stopped
/// dominating.
pub fn record_frame(r: &HoRecord) -> [u8; RECORD_BYTES] {
    let mut b = [0u8; RECORD_BYTES];
    b[0..8].copy_from_slice(&r.timestamp_ms.to_be_bytes());
    b[8..12].copy_from_slice(&r.ue.0.to_be_bytes());
    b[12..16].copy_from_slice(&r.source_sector.0.to_be_bytes());
    b[16..20].copy_from_slice(&r.target_sector.0.to_be_bytes());
    b[20] = rat_code(r.source_rat);
    b[21] = rat_code(r.target_rat);
    b[22] = u8::from(r.outcome == HoOutcome::Failure) | (u8::from(r.srvcc) << 1);
    // b[23] reserved
    b[24..26].copy_from_slice(&r.cause.map_or(0, |c| c.0).to_be_bytes());
    b[26..28].copy_from_slice(&r.messages.to_be_bytes());
    b[28..32].copy_from_slice(&r.duration_ms.to_be_bytes());
    // b[32..36] reserved / alignment
    b
}

/// Append the 36-byte frame of one record to `buf`. Shared by the v1
/// encoder and the v2 chunk writer — both formats carry identical record
/// frames.
pub fn put_record(buf: &mut impl BufMut, r: &HoRecord) {
    buf.put_slice(&record_frame(r));
}

/// Decode one 36-byte record frame. The caller must guarantee at least
/// [`RECORD_BYTES`] remaining — this function validates field values, not
/// buffer length.
pub fn get_record(buf: &mut impl Buf) -> Result<HoRecord, CodecError> {
    debug_assert!(buf.remaining() >= RECORD_BYTES);
    let timestamp_ms = buf.get_u64();
    let ue = UeId(buf.get_u32());
    let source_sector = SectorId(buf.get_u32());
    let target_sector = SectorId(buf.get_u32());
    let source_rat = rat_from(buf.get_u8())?;
    let target_rat = rat_from(buf.get_u8())?;
    let flags = buf.get_u8();
    let _reserved = buf.get_u8();
    let cause_raw = buf.get_u16();
    let messages = buf.get_u16();
    let duration_ms = buf.get_f32();
    let _pad = buf.get_u32();
    let failed = flags & 1 != 0;
    if failed && cause_raw == 0 {
        return Err(CodecError::BadField("cause"));
    }
    Ok(HoRecord {
        timestamp_ms,
        ue,
        source_sector,
        target_sector,
        source_rat,
        target_rat,
        outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
        cause: if failed { Some(CauseCode(cause_raw)) } else { None },
        duration_ms,
        srvcc: flags & 2 != 0,
        messages,
    })
}

/// Encode a dataset into the v1 single-buffer format.
pub fn encode(dataset: &SignalingDataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(V1_HEADER_BYTES + dataset.len() * RECORD_BYTES);
    buf.put_slice(&MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(dataset.days);
    buf.put_u64(dataset.len() as u64);
    for r in dataset.records() {
        put_record(&mut buf, r);
    }
    buf.freeze()
}

/// Decode a v1 binary trace. For v2 chunked streams use
/// [`crate::store::TraceReader`] (or [`read_file`], which dispatches on
/// the version field).
pub fn decode(mut data: Bytes) -> Result<SignalingDataset, CodecError> {
    if data.remaining() < V1_HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let days = data.get_u32();
    let count = data.get_u64();
    // A corrupted count can be astronomically large; checked arithmetic
    // (and comparing against the bytes actually present before any
    // allocation) keeps this a typed error instead of an overflow panic
    // or an OOM abort.
    let need = usize::try_from(count)
        .ok()
        .and_then(|c| c.checked_mul(RECORD_BYTES))
        .ok_or(CodecError::Truncated)?;
    if data.remaining() < need {
        return Err(CodecError::Truncated);
    }
    let count = count as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(get_record(&mut data)?);
    }
    Ok(SignalingDataset::from_records(days, records))
}

/// Write a dataset to a v1 binary trace file.
pub fn write_file(dataset: &SignalingDataset, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(dataset))
}

/// Read a dataset from a binary trace file, v1, v2, or v3 (dispatches on
/// the version field). Any corruption surfaces as `InvalidData`; for
/// skip-and-report streaming of damaged chunked files use
/// [`crate::store::TraceReader`] directly.
pub fn read_file(path: &std::path::Path) -> std::io::Result<SignalingDataset> {
    let raw = std::fs::read(path)?;
    let invalid = |e: CodecError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    if raw.len() >= 6 && raw[..4] == MAGIC {
        let version = u16::from_be_bytes([raw[4], raw[5]]);
        if version == crate::store::VERSION2 || version == crate::store::VERSION3 {
            let mut reader = crate::store::TraceReader::new(&raw[..]).map_err(invalid)?;
            return reader
                .read_to_dataset_strict()
                .map_err(|issue| std::io::Error::new(std::io::ErrorKind::InvalidData, issue));
        }
    }
    decode(Bytes::from(raw)).map_err(invalid)
}

/// Export a dataset to pretty JSON (human inspection / small slices only).
pub fn to_json(dataset: &SignalingDataset) -> serde_json::Result<String> {
    serde_json::to_string_pretty(dataset)
}

/// Import a dataset from JSON.
pub fn from_json(json: &str) -> serde_json::Result<SignalingDataset> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_signaling::causes::PrincipalCause;

    fn sample_dataset() -> SignalingDataset {
        let mut records = Vec::new();
        for i in 0..100u64 {
            let fail = i % 7 == 0;
            records.push(HoRecord {
                timestamp_ms: i * 1000,
                ue: UeId(i as u32 % 10),
                source_sector: SectorId(i as u32),
                target_sector: SectorId(i as u32 + 1),
                source_rat: Rat::G4,
                target_rat: if i % 11 == 0 { Rat::G3 } else { Rat::G4 },
                outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
                cause: fail.then(|| CauseCode::principal(PrincipalCause::SourceCanceled)),
                duration_ms: 43.0 + i as f32,
                srvcc: i % 13 == 0,
                messages: 12,
            });
        }
        SignalingDataset::from_records(1, records)
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let d = sample_dataset();
        let encoded = encode(&d);
        assert_eq!(encoded.len(), V1_HEADER_BYTES + d.len() * RECORD_BYTES);
        let decoded = decode(encoded).unwrap();
        assert_eq!(d, decoded);
    }

    #[test]
    fn record_frame_roundtrips_through_get_record() {
        // The fixed-offset encoder and the field-wise decoder must agree
        // byte for byte — this is what pins the frame layout.
        for r in sample_dataset().records() {
            let frame = record_frame(r);
            let mut buf = &frame[..];
            assert_eq!(&get_record(&mut buf).unwrap(), r);
            assert!(buf.is_empty(), "frame length drifted");
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let d = sample_dataset();
        let json = to_json(&d).unwrap();
        let decoded = from_json(&json).unwrap();
        assert_eq!(d, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = BytesMut::from(&encode(&sample_dataset())[..]);
        raw[0] = b'X';
        assert_eq!(decode(raw.freeze()).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = BytesMut::from(&encode(&sample_dataset())[..]);
        raw[4] = 0xFF;
        assert!(matches!(decode(raw.freeze()).unwrap_err(), CodecError::BadVersion(_)));
    }

    #[test]
    fn truncation_rejected() {
        let raw = encode(&sample_dataset());
        let cut = raw.slice(0..raw.len() - 5);
        assert_eq!(decode(cut).unwrap_err(), CodecError::Truncated);
        assert_eq!(decode(Bytes::from_static(b"TL")).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn absurd_count_is_truncated_not_panic() {
        // A bit flip in the count field must not overflow `count * 36` or
        // trigger a giant allocation.
        let mut raw = BytesMut::from(&encode(&sample_dataset())[..]);
        for i in 10..18 {
            raw[i] = 0xFF; // count = u64::MAX
        }
        assert_eq!(decode(raw.freeze()).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn bad_rat_rejected() {
        let mut raw = BytesMut::from(&encode(&sample_dataset())[..]);
        // First record's source-RAT byte sits at offset 18 + 20.
        raw[18 + 20] = 9;
        assert_eq!(decode(raw.freeze()).unwrap_err(), CodecError::BadField("rat"));
    }

    #[test]
    fn file_roundtrip() {
        let d = sample_dataset();
        let dir = std::env::temp_dir().join("telco_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tlho");
        write_file(&d, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), d);
        // Corrupt file surfaces as InvalidData.
        std::fs::write(&path, b"garbage").unwrap();
        assert_eq!(read_file(&path).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let d = SignalingDataset::new(28);
        let decoded = decode(encode(&d)).unwrap();
        assert_eq!(decoded.days, 28);
        assert!(decoded.is_empty());
    }
}
