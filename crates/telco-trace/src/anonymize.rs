//! Identity anonymization.
//!
//! The operator anonymizes IMSI/IMEI before analysts ever see the data
//! (§3.1, Appendix A). The anonymizer is a salted one-way hash mapping
//! identities to opaque 64-bit tokens: stable within a study (so per-UE
//! aggregation works) but unlinkable to the raw identity without the salt.

use serde::{Deserialize, Serialize};

use telco_devices::ids::{Imei, Imsi};

/// Salted identity anonymizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anonymizer {
    salt: u64,
}

impl Anonymizer {
    /// Anonymizer with the given salt (the operator's secret).
    pub fn new(salt: u64) -> Self {
        Anonymizer { salt }
    }

    /// Anonymize an IMSI.
    pub fn imsi_token(&self, imsi: &Imsi) -> u64 {
        let packed =
            (imsi.mcc as u64) << 50 | (imsi.mnc as u64) << 40 | (imsi.msin & 0xFF_FFFF_FFFF);
        mix(packed ^ self.salt)
    }

    /// Anonymize an IMEI. The TAC is deliberately preserved alongside the
    /// token by callers that need the device-model join (§3.1 footnote:
    /// the first 8 IMEI digits classify the device).
    pub fn imei_token(&self, imei: &Imei) -> u64 {
        mix(imei.as_u64() ^ self.salt.rotate_left(17))
    }
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_devices::ids::Tac;

    #[test]
    fn tokens_are_stable() {
        let a = Anonymizer::new(42);
        let imsi = Imsi::new(299, 42, 1234);
        assert_eq!(a.imsi_token(&imsi), a.imsi_token(&imsi));
    }

    #[test]
    fn tokens_differ_across_salts() {
        let imsi = Imsi::new(299, 42, 1234);
        assert_ne!(Anonymizer::new(1).imsi_token(&imsi), Anonymizer::new(2).imsi_token(&imsi));
    }

    #[test]
    fn distinct_identities_distinct_tokens() {
        let a = Anonymizer::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let t = a.imsi_token(&Imsi::new(299, 42, i));
            assert!(seen.insert(t), "collision at {i}");
        }
    }

    #[test]
    fn imei_tokens_do_not_leak_serial_ordering() {
        let a = Anonymizer::new(9);
        let t1 = a.imei_token(&Imei::new(Tac::new(35_000_000), 1));
        let t2 = a.imei_token(&Imei::new(Tac::new(35_000_000), 2));
        // Adjacent serials must not map to adjacent tokens.
        assert!(t1.abs_diff(t2) > 1_000_000, "tokens too close: {t1} vs {t2}");
    }
}
