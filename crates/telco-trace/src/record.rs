//! Trace record schemas.
//!
//! The mobility-management signaling dataset captures six variables per
//! handover (§3.1): (i) millisecond timestamp, (ii) result, (iii) duration,
//! (iv) failure cause code, (v) anonymized user ID, and (vi) source/target
//! radio sectors with their RATs. [`HoRecord`] is that row, plus two
//! enrichments the simulation can afford (SRVCC flag and message count,
//! used for signaling-volume analyses).

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_signaling::messages::HoType;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;

/// The outcome of a handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HoOutcome {
    /// Completed successfully.
    Success,
    /// Failed (the cause code says why).
    Failure,
}

/// One row of the mobility-management signaling dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoRecord {
    /// Milliseconds since the study start (Mon 2024-01-29 00:00).
    pub timestamp_ms: u64,
    /// Anonymized user identifier.
    pub ue: UeId,
    /// Source radio sector.
    pub source_sector: SectorId,
    /// Target radio sector.
    pub target_sector: SectorId,
    /// RAT of the source sector (4G or 5G-NR anchor; the EPC view).
    pub source_rat: Rat,
    /// RAT of the target sector.
    pub target_rat: Rat,
    /// Success or failure.
    pub outcome: HoOutcome,
    /// Failure cause code; `None` on success.
    pub cause: Option<CauseCode>,
    /// Handover signaling duration, ms.
    pub duration_ms: f32,
    /// Whether the handover was an SRVCC voice-continuity procedure.
    pub srvcc: bool,
    /// Number of signaling messages exchanged.
    pub messages: u16,
}

impl HoRecord {
    /// The handover type implied by the target RAT.
    pub fn ho_type(&self) -> HoType {
        HoType::from_target_rat(self.target_rat)
    }

    /// Whether the handover failed.
    pub fn is_failure(&self) -> bool {
        self.outcome == HoOutcome::Failure
    }

    /// Zero-based study day of the record.
    pub fn day(&self) -> u32 {
        (self.timestamp_ms / 86_400_000) as u32
    }

    /// Hour of day (0..24).
    pub fn hour(&self) -> u32 {
        ((self.timestamp_ms % 86_400_000) / 3_600_000) as u32
    }

    /// 30-minute slot of day (0..48).
    pub fn slot(&self) -> u32 {
        ((self.timestamp_ms % 86_400_000) / 1_800_000) as u32
    }
}

/// Daily radio-network-topology record (§3.1): one row per deployed sector
/// per capture day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyRecord {
    /// Capture day (zero-based study day).
    pub day: u32,
    /// Sector identifier.
    pub sector: SectorId,
    /// RAT of the sector.
    pub rat: Rat,
    /// Longitude of the hosting site (synthetic degrees).
    pub lon: f64,
    /// Latitude of the hosting site (synthetic degrees).
    pub lat: f64,
    /// Postcode of the area the site is installed in.
    pub postcode: u32,
}

/// Devices-catalog record (§3.1): the TAC → attributes join row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Type allocation code.
    pub tac: u32,
    /// Manufacturer name.
    pub manufacturer: String,
    /// Device type name.
    pub device_type: String,
    /// Highest supported generation (2..=5).
    pub max_generation: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(1),
            source_sector: SectorId(10),
            target_sector: SectorId(20),
            source_rat: Rat::G4,
            target_rat: Rat::G3,
            outcome: HoOutcome::Success,
            cause: None,
            duration_ms: 412.0,
            srvcc: false,
            messages: 12,
        }
    }

    #[test]
    fn time_derivations() {
        // Day 2, 07:30:00.500.
        let ts = 2 * 86_400_000 + 7 * 3_600_000 + 30 * 60_000 + 500;
        let r = record(ts);
        assert_eq!(r.day(), 2);
        assert_eq!(r.hour(), 7);
        assert_eq!(r.slot(), 15);
    }

    #[test]
    fn ho_type_follows_target() {
        let mut r = record(0);
        assert_eq!(r.ho_type(), HoType::To3g);
        r.target_rat = Rat::G4;
        assert_eq!(r.ho_type(), HoType::Intra4g5g);
        r.target_rat = Rat::G2;
        assert_eq!(r.ho_type(), HoType::To2g);
    }

    #[test]
    fn record_is_compact() {
        // Records are produced by the billion at paper scale; keep the
        // in-memory row within a cache line.
        assert!(std::mem::size_of::<HoRecord>() <= 64);
    }

    #[test]
    fn failure_flag() {
        let mut r = record(0);
        assert!(!r.is_failure());
        r.outcome = HoOutcome::Failure;
        assert!(r.is_failure());
    }
}
