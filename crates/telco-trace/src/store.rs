//! Formats v2 and v3: the chunked streaming trace store.
//!
//! The paper's operator collects ≈8 TB of signaling per day (§3.1); no
//! single-buffer codec survives that scale. Both chunked formats frame
//! the trace as a sequence of independently verifiable chunks so writers
//! can append incrementally and readers can stream with bounded memory:
//!
//! ```text
//! header   "TLHO" | u16 version | u32 days                      (10 bytes)
//! v2 chunk "CHNK" | u32 seq | u32 count | u32 crc32 | payload   (16 + 36·count)
//! v3 chunk "CHNK" | u32 seq | u32 count | u32 payload_len | u32 crc32 | payload
//! ...
//! trailer  "TEND" | u64 records | u32 chunks | u32 crc32        (20 bytes)
//! ```
//!
//! All integers are big-endian. A v2 chunk payload is `count` row-major
//! 36-byte record frames identical to v1 ([`crate::io`]); a v3 payload
//! is the columnar encoding of [`crate::columnar`] (per-column delta,
//! dictionary, and bit-pack compression), whose size is not derivable
//! from `count` — hence the explicit `payload_len` field. Writers emit
//! v3 by default ([`TraceWriter::new`]); readers accept v1, v2, and v3.
//!
//! Every byte of the stream is covered by a check: each chunk's CRC32
//! covers its payload, chunk sequence numbers must run contiguously, and
//! the trailer CRC32 seals the 10 header bytes plus the totals — so a
//! flip in the `days` field or a silently dropped tail is caught even
//! though the header carries no checksum field of its own. A corrupted
//! chunk is detected, skipped, and reported without aborting the read
//! ([`TraceReader`]); a v3 decode failure names the offending column in
//! its [`CodecError::BadField`] (the recovery unit is still the chunk —
//! a record needs all its columns); a corrupted frame *header* loses
//! framing, and the reader resynchronizes by scanning for the next chunk
//! or trailer magic.

// telco-lint: deny-swallowed-errors

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::BufMut;

use crate::columnar::{decode_columns, ColumnBatch, ColumnEncoder};
use crate::crc32::crc32;
use crate::dataset::SignalingDataset;
use crate::io::{get_record, record_frame, CodecError, MAGIC, RECORD_BYTES};
use crate::record::HoRecord;

/// The row-oriented chunked streaming format version.
pub const VERSION2: u16 = 2;
/// The columnar chunked streaming format version ([`crate::columnar`]).
pub const VERSION3: u16 = 3;
/// Bytes of the v2/v3 stream header.
pub const V2_HEADER_BYTES: usize = 10;
/// Magic opening every chunk frame.
pub const CHUNK_MAGIC: [u8; 4] = *b"CHNK";
/// Magic opening the trailer frame.
pub const TRAILER_MAGIC: [u8; 4] = *b"TEND";
/// Bytes of a v2 chunk frame header (magic + seq + count + crc).
pub const FRAME_HEADER_BYTES: usize = 16;
/// Bytes of a v3 chunk frame header (magic + seq + count + payload_len
/// + crc).
pub const V3_FRAME_HEADER_BYTES: usize = 20;
/// Upper bound on records per chunk (≈150 MB of payload). The writer
/// splits larger chunks; the reader treats a larger declared count as
/// corruption, which keeps a flipped count field from driving a giant
/// allocation.
pub const MAX_CHUNK_RECORDS: u32 = 1 << 22;

/// Records per chunk used by bulk helpers when splitting oversized chunks
/// and by the streaming merge when writing its output.
pub const DEFAULT_CHUNK_RECORDS: usize = 1 << 16;

/// Upper bound on a v3 chunk's declared `payload_len`, per record plus
/// fixed slack. The worst legitimate case (adversarially unsorted
/// timestamps, all-distinct sectors, maximal varints) stays under ~50
/// bytes/record; a declared length beyond this bound is treated as
/// corruption, which keeps a flipped length field from driving a giant
/// allocation.
const MAX_V3_PAYLOAD_PER_RECORD: usize = 64;
/// Fixed slack for the v3 payload bound: column-group framing plus the
/// dictionary headers of an empty or tiny chunk.
const V3_PAYLOAD_SLACK: usize = 256;

/// One problem found while reading a v2 stream: which frame, where, and
/// what was wrong. Readers *report* issues and keep going (skipping the
/// damaged chunk) rather than aborting the whole read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIssue {
    /// Zero-based index of the frame (in stream order) being read when the
    /// issue was detected.
    pub chunk: u64,
    /// Byte offset into the stream where the issue was detected.
    pub offset: u64,
    /// What was wrong.
    pub error: CodecError,
}

impl std::fmt::Display for ChunkIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk {} at byte {}: {}", self.chunk, self.offset, self.error)
    }
}

impl std::error::Error for ChunkIssue {}

/// Metadata of a chunk frame served raw (undecoded) by
/// [`TraceReader::next_chunk_raw`]: enough to re-frame the payload with
/// [`TraceWriter::write_raw_chunk`] without recomputing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawChunk {
    /// Records the frame header declared (CRC-backed for the payload,
    /// so trusted after a clean read).
    pub count: u32,
    /// CRC32 of the payload, as stored and verified.
    pub crc: u32,
}

/// The trailer checksum: CRC32 over the canonical 10-byte header followed
/// by the 12 trailer-total bytes. Sealing the header here is what makes a
/// bit flip in the unchecksummed `days` (or `version`) field detectable.
pub(crate) fn trailer_crc(version: u16, days: u32, totals: &[u8]) -> u32 {
    let mut sealed = Vec::with_capacity(V2_HEADER_BYTES + 12);
    sealed.put_slice(&MAGIC);
    sealed.put_u16(version);
    sealed.put_u32(days);
    sealed.put_slice(totals);
    crc32(&sealed)
}

// ---- writer ----------------------------------------------------------------

/// Incremental chunked writer: appends chunk frames to any [`Write`]
/// sink and seals the stream with a trailer on [`TraceWriter::finish`].
/// Writes the columnar v3 format by default; [`TraceWriter::new_v2`] /
/// [`TraceWriter::with_version`] select the row-oriented v2 format for
/// compatibility. Dropping a writer without finishing leaves a
/// trailer-less stream, which readers flag as
/// [`CodecError::MissingTrailer`] — the crash-detection property the
/// trailer exists for.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    version: u16,
    days: u32,
    chunks: u32,
    records: u64,
    /// Payload scratch reused across chunks.
    payload: Vec<u8>,
    /// Columnar encoder scratch (v3 only; idle for v2).
    encoder: ColumnEncoder,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncate) `path` and write a v3 header.
    pub fn create(path: &Path, days: u32) -> std::io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?), days)
    }

    /// Create (truncate) `path` and write a header for `version` (2 or 3).
    pub fn create_with_version(path: &Path, days: u32, version: u16) -> std::io::Result<Self> {
        Self::with_version(BufWriter::new(File::create(path)?), days, version)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `sink`, writing a v3 (columnar) header immediately.
    pub fn new(sink: W, days: u32) -> std::io::Result<Self> {
        Self::with_version(sink, days, VERSION3)
    }

    /// Wrap `sink`, writing a v2 (row-oriented) header immediately.
    pub fn new_v2(sink: W, days: u32) -> std::io::Result<Self> {
        Self::with_version(sink, days, VERSION2)
    }

    /// Wrap `sink`, writing a header for `version` (2 or 3) immediately.
    pub fn with_version(mut sink: W, days: u32, version: u16) -> std::io::Result<Self> {
        if version != VERSION2 && version != VERSION3 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                CodecError::BadVersion(version),
            ));
        }
        let mut header = Vec::with_capacity(V2_HEADER_BYTES);
        header.put_slice(&MAGIC);
        header.put_u16(version);
        header.put_u32(days);
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            version,
            days,
            chunks: 0,
            records: 0,
            payload: Vec::new(),
            encoder: ColumnEncoder::new(),
        })
    }

    /// Format version this writer emits (2 or 3).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Append one chunk of records (split transparently if longer than
    /// [`MAX_CHUNK_RECORDS`]). An empty slice writes an empty chunk — a
    /// valid frame that keeps sequence numbers aligned with the caller's
    /// chunk structure.
    pub fn write_chunk(&mut self, records: &[HoRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return self.write_frame(records);
        }
        for part in records.chunks(MAX_CHUNK_RECORDS as usize) {
            self.write_frame(part)?;
        }
        Ok(())
    }

    fn write_frame(&mut self, records: &[HoRecord]) -> std::io::Result<()> {
        let mut payload = std::mem::take(&mut self.payload);
        payload.clear();
        if self.version == VERSION3 {
            self.encoder.encode(records, &mut payload);
        } else {
            payload.reserve(records.len() * RECORD_BYTES);
            for r in records {
                payload.extend_from_slice(&record_frame(r));
            }
        }
        let result = self.put_frame(records.len() as u32, &payload, crc32(&payload));
        self.payload = payload;
        result
    }

    /// Append one pre-encoded chunk frame: `payload` must be a valid
    /// payload for this writer's version holding exactly `count` records,
    /// and `crc` its CRC32. This is the merge's raw passthrough — chunks
    /// read from a same-version input stream (already CRC-verified by the
    /// reader) are re-framed with a fresh sequence number and copied
    /// through without a decode/re-encode round trip.
    pub fn write_raw_chunk(&mut self, count: u32, payload: &[u8], crc: u32) -> std::io::Result<()> {
        self.put_frame(count, payload, crc)
    }

    fn put_frame(&mut self, count: u32, payload: &[u8], crc: u32) -> std::io::Result<()> {
        let mut frame = Vec::with_capacity(V3_FRAME_HEADER_BYTES);
        frame.put_slice(&CHUNK_MAGIC);
        frame.put_u32(self.chunks);
        frame.put_u32(count);
        if self.version == VERSION3 {
            frame.put_u32(payload.len() as u32);
        }
        frame.put_u32(crc);
        self.sink.write_all(&frame)?;
        self.sink.write_all(payload)?;
        self.chunks += 1;
        self.records += u64::from(count);
        Ok(())
    }

    /// Write a whole dataset as one chunk per study day (records must be
    /// timestamp-sorted, as [`SignalingDataset::from_records`] guarantees;
    /// consecutive same-day runs become one chunk each).
    pub fn write_dataset(&mut self, dataset: &SignalingDataset) -> std::io::Result<()> {
        let recs = dataset.records();
        let mut start = 0;
        while start < recs.len() {
            let day = recs[start].day();
            let mut end = start + 1;
            while end < recs.len() && recs[end].day() == day {
                end += 1;
            }
            self.write_chunk(&recs[start..end])?;
            start = end;
        }
        Ok(())
    }

    /// Seal the stream: write the trailer, flush, and hand the sink back.
    /// The trailer CRC covers the header bytes plus the totals, so a
    /// flipped header field (e.g. `days`) is caught at end of stream even
    /// though the header itself carries no checksum.
    pub fn finish(mut self) -> std::io::Result<W> {
        let mut trailer = Vec::with_capacity(20);
        trailer.put_slice(&TRAILER_MAGIC);
        trailer.put_u64(self.records);
        trailer.put_u32(self.chunks);
        let crc = trailer_crc(self.version, self.days, &trailer[4..16]);
        trailer.put_u32(crc);
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Chunk frames written so far.
    pub fn chunks_written(&self) -> u32 {
        self.chunks
    }
}

/// Write a dataset to a v2 (row-oriented) chunked trace file (one chunk
/// per day).
pub fn write_file_v2(dataset: &SignalingDataset, path: &Path) -> std::io::Result<()> {
    let mut w = TraceWriter::create_with_version(path, dataset.days, VERSION2)?;
    w.write_dataset(dataset)?;
    w.finish()?;
    Ok(())
}

/// Write a dataset to a v3 (columnar) chunked trace file (one chunk per
/// day).
pub fn write_file_v3(dataset: &SignalingDataset, path: &Path) -> std::io::Result<()> {
    let mut w = TraceWriter::create(path, dataset.days)?;
    w.write_dataset(dataset)?;
    w.finish()?;
    Ok(())
}

// telco-lint: deny-panic(begin)
/// Decode one CRC-verified chunk payload (as produced by
/// [`TraceReader::next_chunk_raw`]) into a [`ColumnBatch`], dispatching
/// on the stream version: v3 payloads decode column-wise, v2 payloads
/// are transposed row-by-row. This is the worker-side half of the
/// parallel out-of-core sweep — a reader thread ships raw payloads,
/// workers decode them into their own reusable batches.
pub fn decode_payload_columns(
    version: u16,
    count: u32,
    payload: &[u8],
    out: &mut ColumnBatch,
) -> Result<(), CodecError> {
    out.clear();
    match version {
        VERSION3 => decode_columns(payload, count as usize, out),
        VERSION2 => {
            let mut buf: &[u8] = payload;
            for _ in 0..count {
                out.push_row(&get_record(&mut buf)?);
            }
            Ok(())
        }
        other => Err(CodecError::BadVersion(other)),
    }
}
// telco-lint: deny-panic(end)

// ---- reader ----------------------------------------------------------------
// telco-lint: deny-panic(begin)
// The read path ingests external bytes: every malformed input must come
// back as a CodecError/ChunkIssue, never abort the process.

/// Streaming chunked-trace reader (v2 row-oriented and v3 columnar) with
/// per-chunk corruption detection and skip-and-report recovery. Also
/// reads v1 single-buffer streams (served as CRC-free batches) so
/// existing traces stay loadable.
///
/// Damaged chunks never abort the read: a CRC mismatch skips exactly that
/// chunk, a corrupted frame header triggers a resync scan for the next
/// magic, and every problem is recorded in [`TraceReader::issues`] (and
/// returned inline by [`TraceReader::next_chunk`]). Underlying I/O errors
/// and truncation end the stream but are reported the same way.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    /// Bytes pushed back by the resync scanner, consumed before `src`.
    pending: VecDeque<u8>,
    offset: u64,
    days: u32,
    version: u16,
    /// Frames attempted so far (the index used in issue reports).
    frames_seen: u64,
    chunks_ok: u64,
    records_read: u64,
    v1_remaining: u64,
    issues: Vec<ChunkIssue>,
    trailer_seen: bool,
    done: bool,
    /// Payload scratch reused across chunks, so a steady-state streaming
    /// read performs no per-chunk byte allocations.
    scratch: Vec<u8>,
    /// Column scratch reused across chunks by the decode paths (v3
    /// payloads decode into columns first; rows are a transpose view).
    cols: ColumnBatch,
}

/// Records per yielded batch when streaming a v1 stream.
const V1_BATCH_RECORDS: u64 = 1 << 16;

impl TraceReader<BufReader<File>> {
    /// Open a trace file for streaming.
    pub fn open(path: &Path) -> Result<Self, CodecError> {
        let file = File::open(path).map_err(|e| CodecError::Io(e.kind()))?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap a reader, consuming and validating the stream header.
    pub fn new(src: R) -> Result<Self, CodecError> {
        let mut reader = TraceReader {
            src,
            pending: VecDeque::new(),
            offset: 0,
            days: 0,
            version: 0,
            frames_seen: 0,
            chunks_ok: 0,
            records_read: 0,
            v1_remaining: 0,
            issues: Vec::new(),
            trailer_seen: false,
            done: false,
            scratch: Vec::new(),
            cols: ColumnBatch::new(),
        };
        let mut header = [0u8; V2_HEADER_BYTES];
        if reader.read_bytes(&mut header)? < V2_HEADER_BYTES {
            return Err(CodecError::Truncated);
        }
        if header[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_be_bytes([header[4], header[5]]);
        let days = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
        match version {
            1 => {
                let mut count = [0u8; 8];
                if reader.read_bytes(&mut count)? < 8 {
                    return Err(CodecError::Truncated);
                }
                reader.v1_remaining = u64::from_be_bytes(count);
            }
            VERSION2 | VERSION3 => {}
            other => return Err(CodecError::BadVersion(other)),
        }
        reader.version = version;
        reader.days = days;
        Ok(reader)
    }

    /// Study-day span declared by the header.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Format version of the stream (1, 2, or 3).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Every problem encountered so far, in stream order.
    pub fn issues(&self) -> &[ChunkIssue] {
        &self.issues
    }

    /// Records successfully delivered so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Chunk frames read cleanly so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_ok
    }

    /// Whether the stream ended with a valid trailer (v2 only; meaningful
    /// after the stream is exhausted).
    pub fn trailer_seen(&self) -> bool {
        self.trailer_seen
    }

    fn read_bytes(&mut self, out: &mut [u8]) -> Result<usize, CodecError> {
        let mut n = 0;
        while let Some(slot) = out.get_mut(n) {
            match self.pending.pop_front() {
                Some(b) => {
                    *slot = b;
                    n += 1;
                }
                None => break,
            }
        }
        while n < out.len() {
            let Some(rest) = out.get_mut(n..) else { break };
            match self.src.read(rest) {
                Ok(0) => break,
                Ok(k) => n += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.offset += n as u64;
                    return Err(CodecError::Io(e.kind()));
                }
            }
        }
        self.offset += n as u64;
        Ok(n)
    }

    fn push_back(&mut self, bytes: &[u8]) {
        for &b in bytes.iter().rev() {
            self.pending.push_front(b);
        }
        self.offset -= bytes.len() as u64;
    }

    fn issue(&mut self, error: CodecError) -> ChunkIssue {
        let issue = ChunkIssue { chunk: self.frames_seen, offset: self.offset, error };
        self.issues.push(issue.clone());
        issue
    }

    fn fail<T>(&mut self, error: CodecError) -> Option<Result<T, ChunkIssue>> {
        self.done = true;
        Some(Err(self.issue(error)))
    }

    /// Scan forward for the next chunk or trailer magic, pushing the match
    /// back so the next frame read starts on it. Returns `false` at EOF.
    fn resync(&mut self, window: [u8; 4]) -> Result<bool, CodecError> {
        let mut window = window;
        loop {
            let mut next = [0u8; 1];
            if self.read_bytes(&mut next)? == 0 {
                return Ok(false);
            }
            window = [window[1], window[2], window[3], next[0]];
            if window == CHUNK_MAGIC || window == TRAILER_MAGIC {
                self.push_back(&window);
                return Ok(true);
            }
        }
    }

    /// The next chunk of records, or the issue that damaged it (also
    /// recorded in [`TraceReader::issues`]). `None` at end of stream.
    /// After a reported issue the reader has already skipped or resynced —
    /// keep calling to stream the remaining healthy chunks.
    pub fn next_chunk(&mut self) -> Option<Result<Vec<HoRecord>, ChunkIssue>> {
        let mut out = Vec::new();
        match self.next_chunk_into(&mut out)? {
            Ok(()) => Some(Ok(out)),
            Err(issue) => Some(Err(issue)),
        }
    }

    /// Decode the next chunk into a caller-supplied buffer (cleared
    /// first), reusing both the caller's record buffer and an internal
    /// payload scratch — the shared-chunk API the analysis sweep borrows
    /// decoded chunks through, with zero steady-state allocation.
    /// Semantics are otherwise identical to [`TraceReader::next_chunk`]:
    /// `None` at end of stream, `Some(Err(..))` for a skipped chunk.
    pub fn next_chunk_into(&mut self, out: &mut Vec<HoRecord>) -> Option<Result<(), ChunkIssue>> {
        out.clear();
        if self.done {
            return None;
        }
        if self.version == 1 {
            return self.next_v1_batch(out);
        }
        let raw = match self.next_frame_payload()? {
            Ok(raw) => raw,
            Err(issue) => return Some(Err(issue)),
        };
        let count = raw.count;
        // The payload scratch is taken out of `self` for the decode so
        // the issue-reporting path can borrow `self` mutably.
        let payload = std::mem::take(&mut self.scratch);
        let decode_err = if self.version == VERSION3 {
            let mut cols = std::mem::take(&mut self.cols);
            let err = decode_columns(&payload, count as usize, &mut cols).err();
            if err.is_none() {
                cols.fill_rows(out);
            }
            self.cols = cols;
            err
        } else {
            out.reserve(count as usize);
            let mut buf: &[u8] = &payload;
            let mut bad = None;
            for _ in 0..count {
                match get_record(&mut buf) {
                    Ok(r) => out.push(r),
                    Err(e) => {
                        bad = Some(e);
                        break;
                    }
                }
            }
            bad
        };
        self.scratch = payload;
        if let Some(e) = decode_err {
            // CRC passed but the payload doesn't decode: writer-side bug
            // or checksum collision. Skip the chunk; for v3 the error
            // names the offending column.
            out.clear();
            let issue = self.issue(e);
            self.frames_seen += 1;
            return Some(Err(issue));
        }
        self.frames_seen += 1;
        self.chunks_ok += 1;
        self.records_read += u64::from(count);
        Some(Ok(()))
    }

    /// Decode the next chunk straight into reusable struct-of-arrays
    /// column buffers (cleared first), skipping per-record [`HoRecord`]
    /// construction entirely for v3 streams — the native input of the
    /// columnar analysis sweep. v2 chunks are transposed row-by-row into
    /// the same batch shape and v1 streams arrive as CRC-free batches,
    /// so the column stream is uniform across versions. Semantics
    /// otherwise match [`TraceReader::next_chunk_into`]: `None` at end
    /// of stream, `Some(Err(..))` for a skipped chunk.
    pub fn next_chunk_columns(&mut self, out: &mut ColumnBatch) -> Option<Result<(), ChunkIssue>> {
        out.clear();
        if self.done {
            return None;
        }
        if self.version == 1 {
            // Legacy single-buffer stream: no chunk frames to decode
            // columns from; materialize a row batch and transpose.
            let mut rows = Vec::new();
            let res = self.next_v1_batch(&mut rows);
            if let Some(Ok(())) = res {
                out.extend_from_rows(&rows);
            }
            return res;
        }
        let raw = match self.next_frame_payload()? {
            Ok(raw) => raw,
            Err(issue) => return Some(Err(issue)),
        };
        let count = raw.count;
        let payload = std::mem::take(&mut self.scratch);
        let decode_err = if self.version == VERSION3 {
            decode_columns(&payload, count as usize, out).err()
        } else {
            let mut buf: &[u8] = &payload;
            let mut bad = None;
            for _ in 0..count {
                match get_record(&mut buf) {
                    Ok(r) => out.push_row(&r),
                    Err(e) => {
                        bad = Some(e);
                        break;
                    }
                }
            }
            bad
        };
        self.scratch = payload;
        if let Some(e) = decode_err {
            out.clear();
            let issue = self.issue(e);
            self.frames_seen += 1;
            return Some(Err(issue));
        }
        self.frames_seen += 1;
        self.chunks_ok += 1;
        self.records_read += u64::from(count);
        Some(Ok(()))
    }

    /// The next chunk frame as its raw encoded payload, skipping record
    /// decode entirely: the frame header is validated and the payload
    /// CRC checked, but columns (v3) or record fields (v2) are not
    /// touched. This is what lets the external merge copy the tail of a
    /// sole remaining input through without a decompress/recompress
    /// round trip. The payload is swapped into `payload`; semantics
    /// otherwise match [`TraceReader::next_chunk_into`]. Not available
    /// for v1 streams (no chunk frames): always `None` there — callers
    /// must check [`TraceReader::version`] first.
    pub fn next_chunk_raw(
        &mut self,
        payload: &mut Vec<u8>,
    ) -> Option<Result<RawChunk, ChunkIssue>> {
        payload.clear();
        if self.done || self.version == 1 {
            return None;
        }
        let raw = match self.next_frame_payload()? {
            Ok(raw) => raw,
            Err(issue) => return Some(Err(issue)),
        };
        std::mem::swap(payload, &mut self.scratch);
        self.frames_seen += 1;
        self.chunks_ok += 1;
        self.records_read += u64::from(raw.count);
        Some(Ok(raw))
    }

    /// Advance to the next chunk frame: consume the magic (dispatching
    /// the trailer and resync paths), validate the header fields, fill
    /// the payload scratch, and check CRC and sequence number. On
    /// `Some(Ok(..))` the scratch holds the verified payload; all
    /// bookkeeping except the success counters has been done.
    fn next_frame_payload(&mut self) -> Option<Result<RawChunk, ChunkIssue>> {
        let mut magic = [0u8; 4];
        let got = match self.read_bytes(&mut magic) {
            Ok(n) => n,
            Err(e) => return self.fail(e),
        };
        if got == 0 {
            self.done = true;
            if !self.trailer_seen {
                return Some(Err(self.issue(CodecError::MissingTrailer)));
            }
            return None;
        }
        if got < 4 {
            return self.fail(CodecError::Truncated);
        }
        if magic == TRAILER_MAGIC {
            return self.read_trailer();
        }
        if magic != CHUNK_MAGIC {
            // Framing lost: report once, then scan for the next magic.
            let issue = self.issue(CodecError::BadChunkMagic);
            self.frames_seen += 1;
            match self.resync(magic) {
                Ok(true) => {}
                Ok(false) => self.done = true,
                Err(e) => return self.fail(e),
            }
            return Some(Err(issue));
        }
        // v2 heads are seq|count|crc (12 bytes); v3 adds payload_len
        // before the crc (16 bytes).
        let head_len = if self.version == VERSION3 { 16 } else { 12 };
        let mut head = [0u8; 16];
        let Some(head_buf) = head.get_mut(..head_len) else {
            return self.fail(CodecError::Truncated);
        };
        match self.read_bytes(head_buf) {
            Ok(n) if n == head_len => {}
            Ok(_) => return self.fail(CodecError::Truncated),
            Err(e) => return self.fail(e),
        }
        let seq = u32::from_be_bytes([head[0], head[1], head[2], head[3]]);
        let count = u32::from_be_bytes([head[4], head[5], head[6], head[7]]);
        let (payload_len, stored_crc) = if self.version == VERSION3 {
            let len = u32::from_be_bytes([head[8], head[9], head[10], head[11]]);
            let crc = u32::from_be_bytes([head[12], head[13], head[14], head[15]]);
            (len as usize, crc)
        } else {
            let crc = u32::from_be_bytes([head[8], head[9], head[10], head[11]]);
            (count as usize * RECORD_BYTES, crc)
        };
        if count > MAX_CHUNK_RECORDS {
            // The length field itself is untrustworthy — resync rather
            // than skip a bogus distance.
            let issue = self.issue(CodecError::BadField("record_count"));
            self.frames_seen += 1;
            match self.resync([0; 4]) {
                Ok(true) => {}
                Ok(false) => self.done = true,
                Err(e) => return self.fail(e),
            }
            return Some(Err(issue));
        }
        if self.version == VERSION3
            && payload_len > count as usize * MAX_V3_PAYLOAD_PER_RECORD + V3_PAYLOAD_SLACK
        {
            // A v3 payload length wildly out of proportion to its record
            // count is corruption; treat like a bad count and resync so
            // a flipped length can't drive a giant allocation or a bogus
            // skip distance.
            let issue = self.issue(CodecError::BadField("payload_len"));
            self.frames_seen += 1;
            match self.resync([0; 4]) {
                Ok(true) => {}
                Ok(false) => self.done = true,
                Err(e) => return self.fail(e),
            }
            return Some(Err(issue));
        }
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        payload.resize(payload_len, 0);
        let got = self.read_bytes(&mut payload);
        self.scratch = payload;
        match got {
            Ok(n) if n == self.scratch.len() => {}
            Ok(_) => return self.fail(CodecError::Truncated),
            Err(e) => return self.fail(e),
        }
        let computed = crc32(&self.scratch);
        if computed != stored_crc {
            let issue = self.issue(CodecError::ChecksumMismatch { stored: stored_crc, computed });
            self.frames_seen += 1;
            return Some(Err(issue));
        }
        // On an otherwise-clean stream, sequence numbers must run
        // contiguously — the seq field is outside the payload CRC, so a
        // flip there (or a spliced chunk) shows up only here. After a
        // reported issue gaps are expected: frames were lost or skipped.
        if self.issues.is_empty() && u64::from(seq) != self.frames_seen {
            let issue = self.issue(CodecError::BadField("chunk_seq"));
            self.frames_seen += 1;
            return Some(Err(issue));
        }
        Some(Ok(RawChunk { count, crc: stored_crc }))
    }

    /// Consume and validate the trailer. Never yields a value — either
    /// the stream ends cleanly (`None`) or an issue is reported.
    fn read_trailer<T>(&mut self) -> Option<Result<T, ChunkIssue>> {
        let mut body = [0u8; 16];
        match self.read_bytes(&mut body) {
            Ok(16) => {}
            Ok(_) => return self.fail(CodecError::Truncated),
            Err(e) => return self.fail(e),
        }
        // Field layout: records u64 | chunks u32 | crc u32. The chunk
        // splits are total on the 16-byte body; the `else` arms are
        // unreachable but keep the read path panic-free by construction.
        let Some((records_bytes, rest)) = body.split_first_chunk::<8>() else {
            return self.fail(CodecError::Truncated);
        };
        let Some((chunks_bytes, crc_rest)) = rest.split_first_chunk::<4>() else {
            return self.fail(CodecError::Truncated);
        };
        let Some((crc_bytes, _)) = crc_rest.split_first_chunk::<4>() else {
            return self.fail(CodecError::Truncated);
        };
        let stored_crc = u32::from_be_bytes(*crc_bytes);
        if trailer_crc(self.version, self.days, &body[..12]) != stored_crc {
            return self.fail(CodecError::TrailerMismatch);
        }
        let total_records = u64::from_be_bytes(*records_bytes);
        let total_chunks = u32::from_be_bytes(*chunks_bytes);
        self.trailer_seen = true;
        // With a damaged stream the totals legitimately disagree (chunks
        // were skipped); only an otherwise-clean read treats a total
        // mismatch as corruption (silent chunk loss).
        if self.issues.is_empty()
            && (total_records != self.records_read || u64::from(total_chunks) != self.chunks_ok)
        {
            return self.fail(CodecError::TrailerMismatch);
        }
        // Anything after the trailer is corruption too.
        let mut probe = [0u8; 1];
        match self.read_bytes(&mut probe) {
            Ok(0) => {
                self.done = true;
                None
            }
            Ok(_) => self.fail(CodecError::BadChunkMagic),
            Err(e) => self.fail(e),
        }
    }

    fn next_v1_batch(&mut self, out: &mut Vec<HoRecord>) -> Option<Result<(), ChunkIssue>> {
        if self.v1_remaining == 0 {
            self.done = true;
            self.trailer_seen = true; // v1 has no trailer; count was the header's
            return None;
        }
        let batch = self.v1_remaining.min(V1_BATCH_RECORDS);
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        payload.resize(batch as usize * RECORD_BYTES, 0);
        let got = self.read_bytes(&mut payload);
        self.scratch = payload;
        match got {
            Ok(n) if n == self.scratch.len() => {}
            Ok(_) => return self.fail(CodecError::Truncated),
            Err(e) => return self.fail(e),
        }
        let payload = std::mem::take(&mut self.scratch);
        out.reserve(batch as usize);
        let mut buf: &[u8] = &payload;
        let mut bad = None;
        for _ in 0..batch {
            match get_record(&mut buf) {
                Ok(r) => out.push(r),
                Err(e) => {
                    bad = Some(e); // no framing to resync on in v1
                    break;
                }
            }
        }
        self.scratch = payload;
        if let Some(e) = bad {
            out.clear();
            return self.fail(e);
        }
        self.frames_seen += 1;
        self.chunks_ok += 1;
        self.records_read += batch;
        self.v1_remaining -= batch;
        Some(Ok(()))
    }

    /// Stream the whole trace into a dataset, skipping damaged chunks.
    /// Inspect [`TraceReader::issues`] afterwards to learn what (if
    /// anything) was lost.
    pub fn read_to_dataset(&mut self) -> SignalingDataset {
        let mut records = Vec::new();
        let mut chunk = Vec::new();
        while let Some(result) = self.next_chunk_into(&mut chunk) {
            if result.is_ok() {
                records.extend_from_slice(&chunk);
            }
        }
        SignalingDataset::from_records(self.days, records)
    }

    /// Stream the whole trace, failing on the first issue. The strict
    /// flavor for callers whose input must be pristine (e.g. the spill
    /// merge reading files it just wrote).
    pub fn read_to_dataset_strict(&mut self) -> Result<SignalingDataset, ChunkIssue> {
        let mut records = Vec::new();
        let mut chunk = Vec::new();
        while let Some(result) = self.next_chunk_into(&mut chunk) {
            result?;
            records.extend_from_slice(&chunk);
        }
        Ok(SignalingDataset::from_records(self.days, records))
    }
}

// ---- k-way streaming merge -------------------------------------------------

/// Streaming k-way merge over timestamp-sorted trace readers. Ties break
/// on reader index, so the output is the stable timestamp sort of the
/// inputs' concatenation — the same contract as
/// [`SignalingDataset::merge_sorted_runs`], with memory bounded by one
/// chunk per input instead of the whole trace.
pub struct SortedMerge<R: Read> {
    streams: Vec<MergeStream<R>>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

struct MergeStream<R: Read> {
    reader: TraceReader<R>,
    buf: Vec<HoRecord>,
    pos: usize,
}

impl<R: Read> MergeStream<R> {
    /// Ensure a current record is buffered; `Ok(false)` at end of stream.
    fn refill(&mut self) -> Result<bool, ChunkIssue> {
        while self.pos >= self.buf.len() {
            match self.reader.next_chunk_into(&mut self.buf) {
                None => return Ok(false),
                Some(Err(issue)) => return Err(issue),
                Some(Ok(())) => self.pos = 0,
            }
        }
        Ok(true)
    }
}

impl<R: Read> SortedMerge<R> {
    /// Start merging `readers` (each must be timestamp-sorted; the merge
    /// is strict — any chunk issue in any input aborts).
    pub fn new(readers: Vec<TraceReader<R>>) -> Result<Self, ChunkIssue> {
        let mut streams: Vec<MergeStream<R>> = readers
            .into_iter()
            .map(|reader| MergeStream { reader, buf: Vec::new(), pos: 0 })
            .collect();
        let mut heap = std::collections::BinaryHeap::with_capacity(streams.len());
        for (i, s) in streams.iter_mut().enumerate() {
            if s.refill()? {
                if let Some(r) = s.buf.get(s.pos) {
                    heap.push(std::cmp::Reverse((r.timestamp_ms, i)));
                }
            }
        }
        Ok(SortedMerge { streams, heap })
    }

    /// The next record in merged order.
    #[allow(clippy::should_implement_trait)] // fallible: not Iterator::next
    pub fn next(&mut self) -> Result<Option<HoRecord>, ChunkIssue> {
        let std::cmp::Reverse((_, i)) = match self.heap.pop() {
            Some(top) => top,
            None => return Ok(None),
        };
        // Heap entries are only pushed for streams with a buffered
        // record, so both lookups always hit; a miss would mean a heap
        // desync, which degrades to end-of-merge instead of a panic.
        let Some(s) = self.streams.get_mut(i) else { return Ok(None) };
        let Some(&record) = s.buf.get(s.pos) else { return Ok(None) };
        s.pos += 1;
        if s.refill()? {
            if let Some(r) = s.buf.get(s.pos) {
                self.heap.push(std::cmp::Reverse((r.timestamp_ms, i)));
            }
        }
        Ok(Some(record))
    }
}

/// Merge sorted trace readers into an in-memory dataset.
pub fn merge_sorted_readers<R: Read>(
    days: u32,
    readers: Vec<TraceReader<R>>,
) -> Result<SignalingDataset, ChunkIssue> {
    let mut merge = SortedMerge::new(readers)?;
    let mut records = Vec::new();
    while let Some(r) = merge.next()? {
        records.push(r);
    }
    Ok(SignalingDataset::from_sorted_records(days, records))
}

/// Merge sorted trace readers directly into a [`TraceWriter`], never
/// materializing the merged trace in memory. Returns the record count.
///
/// Once the merge drains to a single remaining input, the rest of that
/// stream needs no comparisons — its chunks are copied through *raw*
/// (header re-sequenced, payload byte-for-byte, CRC carried over) when
/// the input's format version matches the writer's. For a v3 input that
/// means the tail is merged without decompressing any column; the
/// record stream is identical either way, so the stable-merge contract
/// is unaffected.
pub fn merge_sorted_readers_to_writer<R: Read, W: Write>(
    readers: Vec<TraceReader<R>>,
    writer: &mut TraceWriter<W>,
) -> std::io::Result<u64> {
    let invalid = |issue: ChunkIssue| std::io::Error::new(std::io::ErrorKind::InvalidData, issue);
    let mut merge = SortedMerge::new(readers).map_err(invalid)?;
    let mut buf: Vec<HoRecord> = Vec::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut total = 0u64;
    loop {
        // Heap entries exist only for streams with a buffered record, so
        // one entry means one live input: switch to the raw tail copy if
        // its encoding matches the output's.
        if merge.heap.len() == 1 {
            let Some(&std::cmp::Reverse((_, i))) = merge.heap.peek() else { break };
            let Some(s) = merge.streams.get_mut(i) else { break };
            if s.reader.version() == writer.version() {
                if !buf.is_empty() {
                    writer.write_chunk(&buf)?;
                    buf.clear();
                }
                // Flush the already-decoded remainder of the current
                // chunk, then stream the rest of the file raw.
                let tail = s.buf.get(s.pos..).unwrap_or(&[]);
                if !tail.is_empty() {
                    total += tail.len() as u64;
                    writer.write_chunk(tail)?;
                }
                s.pos = s.buf.len();
                let mut raw = Vec::new();
                while let Some(chunk) = s.reader.next_chunk_raw(&mut raw) {
                    let rc = chunk.map_err(invalid)?;
                    if rc.count > 0 {
                        writer.write_raw_chunk(rc.count, &raw, rc.crc)?;
                        total += u64::from(rc.count);
                    }
                }
                merge.heap.clear();
                break;
            }
        }
        match merge.next().map_err(invalid)? {
            Some(r) => {
                buf.push(r);
                total += 1;
                if buf.len() == DEFAULT_CHUNK_RECORDS {
                    writer.write_chunk(&buf)?;
                    buf.clear();
                }
            }
            None => break,
        }
    }
    if !buf.is_empty() {
        writer.write_chunk(&buf)?;
    }
    Ok(total)
}

/// External merge of sorted run files into one dataset, bounding the
/// open-file fan-in. With more than `fan_in` runs, groups of `fan_in`
/// files are first merged into intermediate v2 files under `tmp_dir`
/// (classic external merge sort); grouping is order-preserving, so the
/// result is byte-identical to a flat stable merge. Input and
/// intermediate files are deleted as they are consumed.
pub fn merge_run_files(
    days: u32,
    runs: Vec<std::path::PathBuf>,
    tmp_dir: &Path,
    fan_in: usize,
) -> std::io::Result<SignalingDataset> {
    let invalid = |e: CodecError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let version = runs_version(&runs)?;
    let files = reduce_runs(days, runs, tmp_dir, fan_in, version)?;
    let mut readers = Vec::with_capacity(files.len());
    for path in &files {
        readers.push(TraceReader::open(path).map_err(invalid)?);
    }
    let merged = merge_sorted_readers(days, readers)
        .map_err(|issue| std::io::Error::new(std::io::ErrorKind::InvalidData, issue))?;
    for path in &files {
        std::fs::remove_file(path)?;
    }
    Ok(merged)
}

/// External merge of sorted run files into one sealed v2 trace file at
/// `out_path`, never materializing the merged trace in memory — the
/// fully out-of-core sibling of [`merge_run_files`], with the same
/// stable-merge byte-identity contract. Input and intermediate files are
/// deleted as they are consumed. Returns the merged record count.
pub fn merge_run_files_to_path(
    days: u32,
    runs: Vec<std::path::PathBuf>,
    tmp_dir: &Path,
    fan_in: usize,
    out_path: &Path,
) -> std::io::Result<u64> {
    let invalid = |e: CodecError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let version = runs_version(&runs)?;
    let files = reduce_runs(days, runs, tmp_dir, fan_in, version)?;
    let mut readers = Vec::with_capacity(files.len());
    for path in &files {
        readers.push(TraceReader::open(path).map_err(invalid)?);
    }
    let mut writer = TraceWriter::create_with_version(out_path, days, version)?;
    let total = merge_sorted_readers_to_writer(readers, &mut writer)?;
    writer.finish()?;
    for path in &files {
        std::fs::remove_file(path)?;
    }
    Ok(total)
}

/// The format version an external merge should write: the version of
/// the first run file, so merging preserves the inputs' encoding (and
/// the raw tail passthrough can engage). Defaults to v3 for an empty
/// run list or v1 inputs (v1 has no chunked writer).
fn runs_version(runs: &[std::path::PathBuf]) -> std::io::Result<u16> {
    let Some(first) = runs.first() else { return Ok(VERSION3) };
    let reader = TraceReader::open(first)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    match reader.version() {
        VERSION2 => Ok(VERSION2),
        _ => Ok(VERSION3),
    }
}

/// The shared reduce loop of the external merges: while more than
/// `fan_in` run files remain, merge order-preserving groups of `fan_in`
/// into intermediate files (written at `version`) under `tmp_dir`,
/// deleting consumed inputs.
fn reduce_runs(
    days: u32,
    runs: Vec<std::path::PathBuf>,
    tmp_dir: &Path,
    fan_in: usize,
    version: u16,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    // telco-lint: allow(panic): API-misuse guard; every call site passes the MERGE_FAN_IN constant
    assert!(fan_in >= 2, "fan-in must be at least 2");
    let invalid = |e: CodecError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let mut level = 0usize;
    let mut files = runs;
    while files.len() > fan_in {
        let mut next: Vec<std::path::PathBuf> = Vec::with_capacity(files.len().div_ceil(fan_in));
        for (group_idx, group) in files.chunks(fan_in).enumerate() {
            let out = tmp_dir.join(format!("merge-{level:02}-{group_idx:06}.tmp-trace"));
            let mut readers = Vec::with_capacity(group.len());
            for path in group {
                readers.push(TraceReader::open(path).map_err(invalid)?);
            }
            let mut writer = TraceWriter::create_with_version(&out, days, version)?;
            merge_sorted_readers_to_writer(readers, &mut writer)?;
            writer.finish()?;
            for path in group {
                std::fs::remove_file(path)?;
            }
            next.push(out);
        }
        files = next;
        level += 1;
    }
    Ok(files)
}

// telco-lint: deny-panic(end)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::encode;
    use crate::record::HoOutcome;
    use telco_devices::population::UeId;
    use telco_signaling::causes::{CauseCode, PrincipalCause};
    use telco_topology::elements::SectorId;
    use telco_topology::rat::Rat;

    fn rec(ts: u64, ue: u32, fail: bool) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(ue),
            target_sector: SectorId(ue + 1),
            source_rat: Rat::G4,
            target_rat: if fail { Rat::G3 } else { Rat::G4 },
            outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
            cause: fail.then(|| CauseCode::principal(PrincipalCause::TargetLoadTooHigh)),
            duration_ms: 50.0,
            srvcc: false,
            messages: 12,
        }
    }

    fn sample_dataset(days: u32, n: u64) -> SignalingDataset {
        let records = (0..n)
            .map(|i| rec(i * 7_000_000 % (days as u64 * 86_400_000), i as u32, i % 5 == 0))
            .collect();
        SignalingDataset::from_records(days, records)
    }

    fn encode_v2(dataset: &SignalingDataset) -> Vec<u8> {
        let mut w = TraceWriter::new_v2(Vec::new(), dataset.days).unwrap();
        w.write_dataset(dataset).unwrap();
        w.finish().unwrap()
    }

    fn encode_v3(dataset: &SignalingDataset) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), dataset.days).unwrap();
        w.write_dataset(dataset).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn v2_roundtrip_per_day_chunks() {
        let d = sample_dataset(3, 500);
        let bytes = encode_v2(&d);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.version(), VERSION2);
        assert_eq!(reader.days(), 3);
        let back = reader.read_to_dataset_strict().unwrap();
        assert_eq!(back, d);
        assert!(reader.trailer_seen());
        assert!(reader.issues().is_empty());
        // Round-trip through the byte-level v1 encoder too: identical bits.
        assert_eq!(encode(&back), encode(&d));
    }

    #[test]
    fn v2_empty_dataset() {
        let d = SignalingDataset::new(28);
        let bytes = encode_v2(&d);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset_strict().unwrap();
        assert_eq!(back.days, 28);
        assert!(back.is_empty());
        assert!(reader.trailer_seen());
    }

    #[test]
    fn v1_stream_compatibility() {
        let d = sample_dataset(2, 300);
        let v1 = encode(&d);
        let mut reader = TraceReader::new(&v1[..]).unwrap();
        assert_eq!(reader.version(), 1);
        let back = reader.read_to_dataset_strict().unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn corrupted_chunk_is_skipped_and_reported() {
        let d = sample_dataset(3, 600);
        let mut bytes = encode_v2(&d);
        // Flip a bit deep inside the second chunk's payload.
        let day0 = d.day(0).count();
        let target = V2_HEADER_BYTES
            + FRAME_HEADER_BYTES
            + day0 * RECORD_BYTES
            + FRAME_HEADER_BYTES
            + 5 * RECORD_BYTES
            + 3;
        bytes[target] ^= 0x10;
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        // Exactly day 1 went missing; days 0 and 2 survived.
        assert_eq!(back.len(), d.len() - d.day(1).count());
        assert_eq!(reader.issues().len(), 1);
        assert!(matches!(reader.issues()[0].error, CodecError::ChecksumMismatch { .. }));
        assert_eq!(reader.issues()[0].chunk, 1);
        // The strict path refuses the same stream.
        let mut strict = TraceReader::new(&bytes[..]).unwrap();
        assert!(strict.read_to_dataset_strict().is_err());
    }

    #[test]
    fn corrupted_frame_header_resyncs() {
        let d = sample_dataset(2, 400);
        let mut bytes = encode_v2(&d);
        // Smash the second chunk's magic: the reader must resync onto the
        // trailer (losing the chunk) without panicking or aborting.
        let day0 = d.day(0).count();
        let second = V2_HEADER_BYTES + FRAME_HEADER_BYTES + day0 * RECORD_BYTES;
        bytes[second] = b'X';
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert_eq!(back.len(), day0);
        assert!(reader.issues().iter().any(|i| i.error == CodecError::BadChunkMagic));
        assert!(reader.trailer_seen());
    }

    #[test]
    fn missing_trailer_reported() {
        let d = sample_dataset(1, 100);
        let mut bytes = encode_v2(&d);
        bytes.truncate(bytes.len() - 20); // drop the trailer exactly
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert_eq!(back.len(), 100); // data intact, seal missing
        assert_eq!(reader.issues().len(), 1);
        assert_eq!(reader.issues()[0].error, CodecError::MissingTrailer);
        assert!(!reader.trailer_seen());
    }

    #[test]
    fn truncated_payload_reported() {
        let d = sample_dataset(1, 100);
        let mut bytes = encode_v2(&d);
        bytes.truncate(bytes.len() - 20 - 7); // trailer + part of last record
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let _ = reader.read_to_dataset();
        assert!(reader.issues().iter().any(|i| i.error == CodecError::Truncated));
    }

    #[test]
    fn absurd_chunk_count_resyncs() {
        let d = sample_dataset(1, 10);
        let mut bytes = encode_v2(&d);
        // Overwrite the chunk's count field with u32::MAX.
        for b in &mut bytes[V2_HEADER_BYTES + 8..V2_HEADER_BYTES + 12] {
            *b = 0xFF;
        }
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert!(back.is_empty());
        assert!(reader.issues().iter().any(|i| i.error == CodecError::BadField("record_count")));
    }

    #[test]
    fn flipped_days_field_detected_by_trailer_seal() {
        let d = sample_dataset(2, 50);
        let mut bytes = encode_v2(&d);
        bytes[9] ^= 0x04; // days is bytes 6..10 of the header
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let _ = reader.read_to_dataset();
        assert!(
            reader.issues().iter().any(|i| i.error == CodecError::TrailerMismatch),
            "days flip must fail the trailer seal"
        );
    }

    #[test]
    fn flipped_seq_field_detected() {
        let d = sample_dataset(3, 600);
        let mut bytes = encode_v2(&d);
        // Second chunk's seq field sits right after its magic.
        let day0 = d.day(0).count();
        let pos = V2_HEADER_BYTES + FRAME_HEADER_BYTES + day0 * RECORD_BYTES + 4;
        bytes[pos + 3] ^= 0x02; // seq 1 -> 3
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert_eq!(back.len(), d.len() - d.day(1).count());
        assert!(reader.issues().iter().any(|i| i.error == CodecError::BadField("chunk_seq")));
    }

    #[test]
    fn data_after_trailer_reported() {
        let d = sample_dataset(1, 10);
        let mut bytes = encode_v2(&d);
        bytes.extend_from_slice(b"junk");
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert_eq!(back.len(), 10);
        assert!(!reader.issues().is_empty());
    }

    #[test]
    fn merge_matches_in_memory_merge() {
        // Three sorted runs with cross-run timestamp ties.
        let runs = vec![
            SignalingDataset::from_records(2, vec![rec(100, 1, false), rec(300, 2, true)]),
            SignalingDataset::new(2),
            SignalingDataset::from_records(2, vec![rec(50, 3, false), rec(100, 4, false)]),
            SignalingDataset::from_records(2, vec![rec(100, 5, false)]),
        ];
        let encoded: Vec<Vec<u8>> = runs
            .iter()
            .map(|run| {
                let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
                w.write_chunk(run.records()).unwrap();
                w.finish().unwrap()
            })
            .collect();
        let readers: Vec<TraceReader<&[u8]>> =
            encoded.iter().map(|bytes| TraceReader::new(&bytes[..]).unwrap()).collect();
        let merged = merge_sorted_readers(2, readers).unwrap();
        let reference = SignalingDataset::merge_sorted_runs(2, runs);
        assert_eq!(merged, reference);
    }

    #[test]
    fn external_merge_multi_pass() {
        let dir = std::env::temp_dir().join("telco_store_merge_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // 9 runs merged with fan-in 3 forces two passes.
        let mut paths = Vec::new();
        let mut all: Vec<HoRecord> = Vec::new();
        for i in 0..9u64 {
            let records: Vec<HoRecord> =
                (0..50).map(|j| rec(j * 97 + i, (i * 100 + j) as u32, false)).collect();
            let run = SignalingDataset::from_records(1, records);
            all.extend_from_slice(run.records());
            let path = dir.join(format!("run-{i:06}.tmp-trace"));
            write_file_v2(&run, &path).unwrap();
            paths.push(path);
        }
        let merged = merge_run_files(1, paths, &dir, 3).unwrap();
        all.sort_by_key(|r| r.timestamp_ms);
        assert_eq!(merged.records(), &all[..]);
        // All intermediates cleaned up.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip_v2() {
        let dir = std::env::temp_dir().join("telco_store_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tlho");
        let d = sample_dataset(2, 250);
        write_file_v2(&d, &path).unwrap();
        // Version-dispatching io::read_file understands v2.
        assert_eq!(crate::io::read_file(&path).unwrap(), d);
        let mut reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.read_to_dataset_strict().unwrap(), d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v3_roundtrip_and_compression() {
        let d = sample_dataset(3, 500);
        let v3 = encode_v3(&d);
        let v2 = encode_v2(&d);
        let mut reader = TraceReader::new(&v3[..]).unwrap();
        assert_eq!(reader.version(), VERSION3);
        assert_eq!(reader.days(), 3);
        let back = reader.read_to_dataset_strict().unwrap();
        assert_eq!(back, d);
        assert!(reader.trailer_seen());
        assert!(reader.issues().is_empty());
        // The columnar payload must actually compress this workload.
        assert!(v3.len() < v2.len(), "v3 {} not smaller than v2 {}", v3.len(), v2.len());
    }

    #[test]
    fn v3_is_the_default_writer_version() {
        let w = TraceWriter::new(Vec::new(), 1).unwrap();
        assert_eq!(w.version(), VERSION3);
        let bytes = encode_v3(&SignalingDataset::new(1));
        assert_eq!(u16::from_be_bytes([bytes[4], bytes[5]]), VERSION3);
    }

    #[test]
    fn v3_empty_dataset() {
        let bytes = encode_v3(&SignalingDataset::new(28));
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset_strict().unwrap();
        assert_eq!(back.days, 28);
        assert!(back.is_empty());
        assert!(reader.trailer_seen());
    }

    #[test]
    fn v3_corrupted_chunk_is_skipped_and_reported() {
        let d = sample_dataset(3, 600);
        let clean = encode_v3(&d);
        // Flip one bit in every payload byte position of the second
        // chunk, one at a time, sampling a few: the reader must always
        // skip exactly that chunk and report a checksum mismatch.
        let mut reader = TraceReader::new(&clean[..]).unwrap();
        let first = reader.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), d.day(0).count());
        // Find the second chunk's payload: header + first frame.
        let mut pos = V2_HEADER_BYTES;
        for _ in 0..1 {
            let len = u32::from_be_bytes([
                clean[pos + 12],
                clean[pos + 13],
                clean[pos + 14],
                clean[pos + 15],
            ]) as usize;
            pos += V3_FRAME_HEADER_BYTES + len;
        }
        let target = pos + V3_FRAME_HEADER_BYTES + 7;
        let mut bytes = clean.clone();
        bytes[target] ^= 0x10;
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert_eq!(back.len(), d.len() - d.day(1).count());
        assert!(matches!(reader.issues()[0].error, CodecError::ChecksumMismatch { .. }));
        assert_eq!(reader.issues()[0].chunk, 1);
    }

    #[test]
    fn v3_absurd_payload_len_resyncs() {
        let d = sample_dataset(1, 10);
        let mut bytes = encode_v3(&d);
        // Overwrite the first chunk's payload_len with u32::MAX while
        // leaving count plausible: the reader must refuse the
        // allocation and resync.
        for b in &mut bytes[V2_HEADER_BYTES + 12..V2_HEADER_BYTES + 16] {
            *b = 0xFF;
        }
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert!(back.is_empty());
        assert!(reader.issues().iter().any(|i| i.error == CodecError::BadField("payload_len")));
    }

    #[test]
    fn v3_version_flip_detected_by_trailer_seal() {
        // Rewriting the header version (3 → 2) without re-sealing must
        // fail: the trailer CRC covers the version field.
        let d = sample_dataset(1, 0);
        let mut bytes = encode_v3(&d);
        bytes[5] = VERSION2 as u8;
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let _ = reader.read_to_dataset();
        assert!(reader.issues().iter().any(|i| i.error == CodecError::TrailerMismatch));
    }

    #[test]
    fn v3_decode_failure_names_the_column() {
        // Craft a frame whose payload passes CRC but holds an invalid
        // RAT code: the issue must carry the column name.
        let d = sample_dataset(1, 5);
        let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
        w.write_dataset(&d).unwrap();
        let mut bytes = w.finish().unwrap();
        // Locate the source_rat column (id 4) inside the first payload
        // and set an index bit pattern to 3 (valid) → craft instead via
        // re-CRC: flip a payload byte and fix the stored CRC.
        let payload_len = u32::from_be_bytes([
            bytes[V2_HEADER_BYTES + 8],
            bytes[V2_HEADER_BYTES + 9],
            bytes[V2_HEADER_BYTES + 10],
            bytes[V2_HEADER_BYTES + 11],
        ]) as usize;
        let payload_start = V2_HEADER_BYTES + V3_FRAME_HEADER_BYTES;
        // Walk the column-group frames to the flags column (id 6) and
        // make record 0 a failure without a cause flag — an invalid
        // record the row codec would reject too.
        let mut q = payload_start;
        while bytes[q] != 6 {
            let len = u32::from_be_bytes([bytes[q + 1], bytes[q + 2], bytes[q + 3], bytes[q + 4]])
                as usize;
            q += 5 + len;
        }
        bytes[q + 5] = 0x01;
        let crc = crc32(&bytes[payload_start..payload_start + payload_len]);
        bytes[V2_HEADER_BYTES + 12..V2_HEADER_BYTES + 16].copy_from_slice(&crc.to_be_bytes());
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back = reader.read_to_dataset();
        assert!(back.is_empty());
        assert!(
            reader.issues().iter().any(|i| matches!(i.error, CodecError::BadField(_))),
            "column decode failure must surface as BadField: {:?}",
            reader.issues()
        );
    }

    #[test]
    fn raw_chunk_passthrough_matches_decode() {
        // Reading a v3 stream raw and re-framing through write_raw_chunk
        // must reproduce a byte-identical record stream.
        let d = sample_dataset(2, 300);
        let bytes = encode_v3(&d);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut writer = TraceWriter::new(Vec::new(), 2).unwrap();
        let mut raw = Vec::new();
        while let Some(chunk) = reader.next_chunk_raw(&mut raw) {
            let rc = chunk.unwrap();
            writer.write_raw_chunk(rc.count, &raw, rc.crc).unwrap();
        }
        assert!(reader.trailer_seen());
        let copied = writer.finish().unwrap();
        let mut reread = TraceReader::new(&copied[..]).unwrap();
        assert_eq!(reread.read_to_dataset_strict().unwrap(), d);
        // Same chunk structure and payloads → identical bytes.
        assert_eq!(copied, bytes);
    }

    #[test]
    fn merge_preserves_run_version_and_passthrough_tail() {
        let dir = std::env::temp_dir().join("telco_store_merge_v3_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Two runs: a short one and a long tail — the merge exhausts the
        // short one early, then raw-copies the long one's remainder.
        let short: Vec<HoRecord> = (0..20u64).map(|i| rec(i * 10, i as u32, false)).collect();
        let long: Vec<HoRecord> =
            (0..4000u64).map(|i| rec(i * 50, (i + 100) as u32, i % 7 == 0)).collect();
        let mut all: Vec<HoRecord> = short.iter().chain(long.iter()).copied().collect();
        all.sort_by_key(|r| r.timestamp_ms);
        for (version, expect) in [(VERSION2, VERSION2), (VERSION3, VERSION3)] {
            let mut paths = Vec::new();
            for (i, run) in [&short, &long].iter().enumerate() {
                let path = dir.join(format!("run-{version}-{i:06}.tmp-trace"));
                let mut w = TraceWriter::create_with_version(&path, 3, version).unwrap();
                for day_chunk in run.chunks(512) {
                    w.write_chunk(day_chunk).unwrap();
                }
                w.finish().unwrap();
                paths.push(path);
            }
            let out = dir.join(format!("merged-{version}.tlho"));
            let n = merge_run_files_to_path(3, paths, &dir, 128, &out).unwrap();
            assert_eq!(n, all.len() as u64);
            let mut reader = TraceReader::open(&out).unwrap();
            assert_eq!(reader.version(), expect, "merge must preserve the run version");
            let merged = reader.read_to_dataset_strict().unwrap();
            assert_eq!(merged.records(), &all[..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip_v3() {
        let dir = std::env::temp_dir().join("telco_store_file_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tlho");
        let d = sample_dataset(2, 250);
        write_file_v3(&d, &path).unwrap();
        // Version-dispatching io::read_file understands v3.
        assert_eq!(crate::io::read_file(&path).unwrap(), d);
        let mut reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.read_to_dataset_strict().unwrap(), d);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
