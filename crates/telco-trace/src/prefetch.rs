//! Bounded frame queue for the parallel out-of-core sweep.
//!
//! A spilled trace is one sequential file, so exactly one thread should
//! own the file descriptor — but chunk *decode* and analysis are
//! CPU-bound and parallelize cleanly. The split implemented here:
//!
//! - a **reader thread** streams CRC-verified raw payloads off disk
//!   ([`crate::store::TraceReader::next_chunk_raw`] — header validated,
//!   checksum checked, columns untouched) and publishes them, in file
//!   order, into a bounded ring of [`FrameQueue`] slots;
//! - **worker threads** claim ascending chunk indexes (the caller
//!   brings its own work-stealing cursor), block on the slot that will
//!   carry their chunk, decode the payload into a private
//!   [`crate::columnar::ColumnBatch`], and run analysis passes over it.
//!
//! Slot `i % capacity` carries frame `i`, so the ring doubles as the
//! ordering structure: the reader publishes sequentially and back-
//! pressures when the ring is full (bounded memory — at most
//! `capacity` payloads in flight), and a worker waiting for chunk `i`
//! sleeps on exactly one condvar. Payload buffers recycle through a
//! small pool, so the steady-state pipeline performs no per-chunk
//! allocation. The queue itself is FIFO per slot and carries no
//! ordering decisions beyond "frame `i` lives in slot `i % capacity`";
//! determinism of the sweep comes from the caller folding per-chunk
//! results in chunk-index order, exactly like the in-memory per-day
//! fold.
//!
//! Poisoned mutexes are absorbed (`PoisonError::into_inner`): a worker
//! panic must not cascade a second panic out of the queue while the
//! sweep scope unwinds.

// telco-lint: deny-nondeterminism

// Under `--cfg loom` the queue is built on the model-checked
// primitives, so tests/loom_prefetch.rs explores every interleaving of
// its lock/condvar/atomic operations. The loom stand-ins mirror the
// std API (including `LockResult`), so the code below is identical
// either way.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard, PoisonError};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::store::ChunkIssue;

/// One CRC-verified chunk payload in flight from the reader thread to a
/// decode worker.
#[derive(Debug)]
pub struct Frame {
    /// Position of this chunk in the stream of healthy chunks (the fold
    /// key — damaged chunks are skipped by the reader and never get an
    /// index, matching the sequential sweep's skip-and-report recovery).
    pub index: u64,
    /// Records in the chunk, per its validated header.
    pub count: u32,
    /// The raw encoded payload (v3 column groups or v2 row frames).
    pub payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct Slot {
    frame: Mutex<Option<Frame>>,
    /// Signaled when the slot is filled (or the stream ends).
    ready: Condvar,
    /// Signaled when the slot is drained.
    freed: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sentinel for "the reader has not finished yet".
const OPEN: u64 = u64::MAX;

/// Bounded single-producer / multi-consumer ring of chunk frames; see
/// the module docs for the pipeline it implements.
#[derive(Debug)]
pub struct FrameQueue {
    slots: Vec<Slot>,
    /// Total frames the reader produced, or [`OPEN`] while it is still
    /// running. Workers asking for an index at or past this bound get
    /// `None` from [`FrameQueue::take`].
    end: AtomicU64,
    /// First error that aborted the reader, if any.
    error: Mutex<Option<ChunkIssue>>,
    /// Recycled payload buffers (bounded by `capacity`).
    pool: Mutex<Vec<Vec<u8>>>,
}

impl FrameQueue {
    /// A queue with `capacity` slots (≥ 1 enforced). Sized at twice the
    /// worker count, the reader stays one full frame ahead of every
    /// worker — double buffering.
    pub fn new(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity.max(1), Slot::default);
        FrameQueue {
            slots,
            end: AtomicU64::new(OPEN),
            error: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
        }
    }

    fn slot(&self, index: u64) -> &Slot {
        let cap = self.slots.len() as u64;
        // capacity ≥ 1, so the modulo is always in range; the fallback
        // is unreachable but keeps the hot path panic-free.
        self.slots.get((index % cap) as usize).unwrap_or_else(|| &self.slots[0])
    }

    /// Reader side: publish frame `frame.index` (which must ascend by 1
    /// per call), blocking while the ring is full.
    pub fn push(&self, frame: Frame) {
        let slot = self.slot(frame.index);
        let mut guard = lock(&slot.frame);
        while guard.is_some() {
            guard = slot.freed.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        *guard = Some(frame);
        slot.ready.notify_all();
    }

    // telco-lint: audited-atomics(begin): `end` is a Release-store / Acquire-load pair — finish() publishes the
    // frame count and every frame written before it; a worker's Acquire load that observes `end <= index`
    // therefore also observes all published frames, so returning None is never premature. Model-checked by
    // tests/loom_prefetch.rs under the vendored loom scheduler.
    /// Reader side: declare the stream complete after `total` frames,
    /// waking every waiting worker.
    pub fn finish(&self, total: u64) {
        self.end.store(total, Ordering::Release);
        for slot in &self.slots {
            // Take the lock so a worker between its end-check and its
            // wait cannot miss the wakeup.
            let _guard = lock(&slot.frame);
            slot.ready.notify_all();
        }
    }

    /// Reader side: abort the stream after `produced` frames because of
    /// `issue` (an I/O failure — corruption is skipped, not fatal).
    pub fn fail(&self, produced: u64, issue: ChunkIssue) {
        *lock(&self.error) = Some(issue);
        self.finish(produced);
    }

    /// The error that aborted the reader, if any (checked by the
    /// coordinator after all threads join).
    pub fn take_error(&self) -> Option<ChunkIssue> {
        lock(&self.error).take()
    }

    /// Worker side: wait for frame `index`; `None` once the stream is
    /// known to end before it.
    pub fn take(&self, index: u64) -> Option<Frame> {
        let slot = self.slot(index);
        let mut guard = lock(&slot.frame);
        loop {
            if guard.as_ref().is_some_and(|f| f.index == index) {
                let frame = guard.take();
                slot.freed.notify_all();
                return frame;
            }
            if self.end.load(Ordering::Acquire) <= index {
                return None;
            }
            guard = slot.ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
    // telco-lint: audited-atomics(end)

    /// A payload buffer from the recycle pool (or a fresh one).
    pub fn buffer(&self) -> Vec<u8> {
        lock(&self.pool).pop().unwrap_or_default()
    }

    /// Return a drained payload buffer to the pool.
    pub fn recycle(&self, buf: Vec<u8>) {
        let mut pool = lock(&self.pool);
        if pool.len() < self.slots.len() {
            pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frames per stream in the threaded tests — shrunk under Miri,
    /// where every condvar round trip costs milliseconds, not micros.
    const STREAM: u64 = if cfg!(miri) { 8 } else { 100 };

    #[test]
    fn frames_flow_in_order_through_a_tiny_ring() {
        let queue = FrameQueue::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10u64 {
                    let mut payload = queue.buffer();
                    payload.clear();
                    payload.push(i as u8);
                    queue.push(Frame { index: i, count: 1, payload });
                }
                queue.finish(10);
            });
            // One consumer claiming ascending indexes sees every frame.
            for i in 0..10u64 {
                let frame = queue.take(i).expect("frame must arrive");
                assert_eq!(frame.index, i);
                assert_eq!(frame.payload, vec![i as u8]);
                queue.recycle(frame.payload);
            }
            assert!(queue.take(10).is_none(), "past the end is None");
        });
        assert!(queue.take_error().is_none());
    }

    #[test]
    fn workers_share_the_stream_without_loss() {
        let queue = FrameQueue::new(4);
        let next = AtomicU64::new(0);
        let total = STREAM;
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..total {
                    queue.push(Frame { index: i, count: 0, payload: vec![i as u8] });
                }
                queue.finish(total);
            });
            for _ in 0..2 {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    match queue.take(i) {
                        Some(frame) => seen.lock().unwrap().push(frame.index),
                        None => break,
                    }
                });
            }
        });
        let mut indexes = seen.into_inner().unwrap();
        indexes.sort_unstable();
        assert_eq!(indexes, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn fail_wakes_waiters_and_surfaces_the_issue() {
        let queue = FrameQueue::new(2);
        std::thread::scope(|s| {
            let handle = s.spawn(|| queue.take(5));
            queue.push(Frame { index: 0, count: 0, payload: Vec::new() });
            queue.fail(
                1,
                ChunkIssue {
                    chunk: 1,
                    offset: 99,
                    error: crate::io::CodecError::Io(std::io::ErrorKind::UnexpectedEof),
                },
            );
            assert!(handle.join().unwrap().is_none(), "waiter past the end unblocks");
        });
        // Frame 0 itself stays deliverable after a failure.
        assert!(queue.take(0).is_some());
        let issue = queue.take_error().expect("error recorded");
        assert_eq!(issue.chunk, 1);
    }
}
