//! # telco-trace
//!
//! Trace substrate: the handover-record schema carrying the six variables
//! of the paper's mobility-management signaling dataset (§3.1), the
//! in-memory dataset with the slicing primitives every analysis needs, a
//! compact binary codec and JSON export, and the operator-side identity
//! anonymizer (§3.1, Appendix A).
//!
//! ## Example
//!
//! ```
//! use telco_trace::dataset::SignalingDataset;
//! use telco_trace::io::{decode, encode};
//!
//! let d = SignalingDataset::new(28);
//! let bytes = encode(&d);
//! assert_eq!(decode(bytes).unwrap().days, 28);
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod columnar;
pub mod crc32;
pub mod dataset;
pub mod hash;
pub mod io;
pub mod prefetch;
pub mod probe;
pub mod record;
pub mod snap;
pub mod source;
pub mod store;

pub use anonymize::Anonymizer;
pub use columnar::ColumnBatch;
pub use dataset::SignalingDataset;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use io::{decode, encode, from_json, read_file, to_json, write_file, CodecError};
pub use prefetch::{Frame, FrameQueue};
pub use probe::{probe_trailer, validate_file, StreamSummary, TrailerProbe};
pub use record::{DeviceRecord, HoOutcome, HoRecord, TopologyRecord};
pub use snap::{decode_frame, encode_frame, SnapError, SnapReader, SnapWriter};
pub use source::{SpilledTrace, TraceSource};
pub use store::{ChunkIssue, RawChunk, TraceReader, TraceWriter};
