//! Stream-validity probes for sealed chunked traces.
//!
//! The sharded orchestrator treats a spilled shard as complete only if
//! its stream proves itself twice over: a cheap trailer probe (is the
//! stream *sealed*?) and a full strict scan (is every byte *intact*?).
//! The probe reads exactly 30 bytes — header plus trailer — so scanning
//! a directory of thousand-shard manifests stays O(shards), not
//! O(bytes); the strict scan re-verifies every chunk CRC and decodes
//! every payload, which is what catches a flipped byte *inside* a chunk
//! of an otherwise perfectly sealed file.
//!
//! Both probes refuse, rather than repair: any deviation comes back as
//! an error and the caller re-dispatches the shard. Contrast with
//! [`crate::store::TraceReader`]'s skip-and-report recovery, which is
//! the right behaviour for *analysis* over best-effort data but exactly
//! wrong for a completion check.

// telco-lint: deny-panic
// Probes ingest external bytes (possibly truncated or corrupted shard
// files); every malformed input must come back as an error.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::io::{CodecError, MAGIC};
use crate::record::HoRecord;
use crate::store::{
    trailer_crc, ChunkIssue, TraceReader, TRAILER_MAGIC, V2_HEADER_BYTES, VERSION2, VERSION3,
};

/// Bytes of the v2/v3 trailer frame: magic + u64 records + u32 chunks +
/// u32 crc.
pub const TRAILER_BYTES: usize = 20;

/// What a [`probe_trailer`] found: the stream identity fields the header
/// declares plus the totals the trailer seals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailerProbe {
    /// Format version from the header (2 or 3).
    pub version: u16,
    /// Study-day span from the header.
    pub days: u32,
    /// Total records the trailer declares.
    pub records: u64,
    /// Total chunk frames the trailer declares.
    pub chunks: u32,
}

/// Cheap seal check: read the 10-byte header and the final 20 bytes,
/// verify the trailer magic and its CRC (which covers the header bytes
/// plus the totals). Detects a missing, truncated, or partially written
/// trailer — the signature a crashed or killed writer leaves behind —
/// without reading the stream body. A probe success does *not* vouch for
/// the chunk payloads; pair it with [`validate_file`] when the answer
/// must be authoritative.
pub fn probe_trailer(path: &Path) -> Result<TrailerProbe, CodecError> {
    let mut file = std::fs::File::open(path).map_err(|e| CodecError::Io(e.kind()))?;
    probe_trailer_seekable(&mut file)
}

/// [`probe_trailer`] over any seekable byte stream.
pub fn probe_trailer_seekable<S: Read + Seek>(src: &mut S) -> Result<TrailerProbe, CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.kind());
    let total = src.seek(SeekFrom::End(0)).map_err(io_err)?;
    if total < (V2_HEADER_BYTES + TRAILER_BYTES) as u64 {
        return Err(CodecError::Truncated);
    }
    src.seek(SeekFrom::Start(0)).map_err(io_err)?;
    let mut header = [0u8; V2_HEADER_BYTES];
    src.read_exact(&mut header).map_err(io_err)?;
    if header[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != VERSION2 && version != VERSION3 {
        // v1 streams have no trailer to probe; report the version rather
        // than a misleading MissingTrailer.
        return Err(CodecError::BadVersion(version));
    }
    let days = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    src.seek(SeekFrom::End(-(TRAILER_BYTES as i64))).map_err(io_err)?;
    let mut trailer = [0u8; TRAILER_BYTES];
    src.read_exact(&mut trailer).map_err(io_err)?;
    if trailer[..4] != TRAILER_MAGIC {
        // A writer that died mid-trailer (or mid-chunk) leaves the file's
        // final 20 bytes misaligned with the trailer frame.
        return Err(CodecError::MissingTrailer);
    }
    let Some(crc_bytes) = trailer.get(16..TRAILER_BYTES) else {
        return Err(CodecError::Truncated);
    };
    let Ok(crc_arr) = <[u8; 4]>::try_from(crc_bytes) else {
        return Err(CodecError::Truncated);
    };
    let stored_crc = u32::from_be_bytes(crc_arr);
    let Some(totals) = trailer.get(4..16) else {
        return Err(CodecError::Truncated);
    };
    if trailer_crc(version, days, totals) != stored_crc {
        return Err(CodecError::TrailerMismatch);
    }
    let Some(records_bytes) = totals.get(..8).and_then(|b| <[u8; 8]>::try_from(b).ok()) else {
        return Err(CodecError::Truncated);
    };
    let Some(chunks_bytes) = totals.get(8..12).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
        return Err(CodecError::Truncated);
    };
    Ok(TrailerProbe {
        version,
        days,
        records: u64::from_be_bytes(records_bytes),
        chunks: u32::from_be_bytes(chunks_bytes),
    })
}

/// What a strict validation scan established about an intact stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Format version of the stream (1, 2, or 3).
    pub version: u16,
    /// Study-day span from the header.
    pub days: u32,
    /// Records decoded.
    pub records: u64,
    /// Chunk frames read cleanly.
    pub chunks: u64,
}

/// Full strict validation: stream every chunk, re-check every CRC,
/// decode every payload, and require a clean trailer whose totals match
/// what was actually read. The first deviation aborts the scan with its
/// [`ChunkIssue`] — no skip-and-report. This is the authoritative
/// completion check: it catches what [`probe_trailer`] cannot, namely
/// corruption *between* the header and a perfectly valid trailer.
pub fn validate_file(path: &Path) -> Result<StreamSummary, ChunkIssue> {
    let open = |e: CodecError| ChunkIssue { chunk: 0, offset: 0, error: e };
    let file = std::fs::File::open(path).map_err(|e| open(CodecError::Io(e.kind())))?;
    validate_stream(std::io::BufReader::new(file))
}

/// [`validate_file`] over any byte stream.
pub fn validate_stream<R: Read>(src: R) -> Result<StreamSummary, ChunkIssue> {
    let open = |e: CodecError| ChunkIssue { chunk: 0, offset: 0, error: e };
    let mut reader = TraceReader::new(src).map_err(open)?;
    let mut chunk: Vec<HoRecord> = Vec::new();
    while let Some(result) = reader.next_chunk_into(&mut chunk) {
        result?;
    }
    if !reader.trailer_seen() {
        // Unreachable in practice (the reader reports MissingTrailer as
        // an issue), kept as defence in depth for the completion check.
        return Err(open(CodecError::MissingTrailer));
    }
    Ok(StreamSummary {
        version: reader.version(),
        days: reader.days(),
        records: reader.records_read(),
        chunks: reader.chunks_read(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SignalingDataset;
    use crate::record::HoOutcome;
    use crate::store::TraceWriter;
    use std::io::Cursor;
    use telco_devices::population::UeId;
    use telco_topology::elements::SectorId;
    use telco_topology::rat::Rat;

    fn rec(ts: u64, ue: u32) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: Rat::G4,
            outcome: HoOutcome::Success,
            cause: None,
            duration_ms: 50.0,
            srvcc: false,
            messages: 12,
        }
    }

    fn sealed(version: u16, n: u64) -> Vec<u8> {
        let records = (0..n).map(|i| rec(i * 1000, i as u32)).collect();
        let dataset = SignalingDataset::from_records(2, records);
        let mut w = TraceWriter::with_version(Vec::new(), 2, version).unwrap();
        w.write_dataset(&dataset).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn probe_accepts_sealed_streams() {
        for version in [2u16, 3] {
            let bytes = sealed(version, 500);
            let probe = probe_trailer_seekable(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(probe.version, version);
            assert_eq!(probe.days, 2);
            assert_eq!(probe.records, 500);
            assert!(probe.chunks >= 1);
            let summary = validate_stream(Cursor::new(&bytes)).unwrap();
            assert_eq!(summary.records, 500);
            assert_eq!(summary.chunks, u64::from(probe.chunks));
        }
    }

    #[test]
    fn probe_accepts_empty_sealed_stream() {
        let bytes = TraceWriter::new(Vec::new(), 1).unwrap().finish().unwrap();
        let probe = probe_trailer_seekable(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(probe.records, 0);
        assert_eq!(probe.chunks, 0);
        assert_eq!(validate_stream(Cursor::new(&bytes)).unwrap().records, 0);
    }

    #[test]
    fn probe_rejects_every_truncation_point() {
        // Chop the stream at every byte boundary: no prefix of a sealed
        // stream may probe as sealed (the final 20 bytes stop being a
        // valid trailer the moment anything is missing).
        let bytes = sealed(3, 200);
        for cut in 0..bytes.len() - 1 {
            let probe = probe_trailer_seekable(&mut Cursor::new(&bytes[..cut]));
            assert!(probe.is_err(), "truncation at {cut}/{} probed as sealed", bytes.len());
        }
    }

    #[test]
    fn probe_detects_partial_trailer() {
        // The resume edge case: a writer killed mid-trailer leaves some
        // but not all trailer bytes. Every partial length must fail.
        let bytes = sealed(2, 100);
        for missing in 1..=TRAILER_BYTES {
            let cut = &bytes[..bytes.len() - missing];
            match probe_trailer_seekable(&mut Cursor::new(cut)) {
                Err(CodecError::MissingTrailer | CodecError::TrailerMismatch) => {}
                other => panic!("partial trailer (missing {missing}) gave {other:?}"),
            }
        }
    }

    #[test]
    fn probe_detects_flipped_trailer_and_header() {
        let bytes = sealed(3, 100);
        // Flip one bit in the days field: the trailer CRC seals the
        // header, so the probe must notice.
        let mut bad_header = bytes.clone();
        bad_header[7] ^= 0x01;
        assert_eq!(
            probe_trailer_seekable(&mut Cursor::new(&bad_header)),
            Err(CodecError::TrailerMismatch)
        );
        // Flip one bit in the trailer totals.
        let mut bad_totals = bytes.clone();
        let n = bad_totals.len();
        bad_totals[n - 10] ^= 0x80;
        assert_eq!(
            probe_trailer_seekable(&mut Cursor::new(&bad_totals)),
            Err(CodecError::TrailerMismatch)
        );
    }

    #[test]
    fn probe_passes_midstream_corruption_but_validation_catches_it() {
        // The division of labour the orchestrator relies on: a byte
        // flipped inside a chunk payload leaves header and trailer
        // intact (probe passes) but must fail the strict scan.
        let bytes = sealed(2, 400);
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(probe_trailer_seekable(&mut Cursor::new(&corrupt)).is_ok());
        let err = validate_stream(Cursor::new(&corrupt)).unwrap_err();
        assert!(
            matches!(
                err.error,
                CodecError::ChecksumMismatch { .. }
                    | CodecError::BadChunkMagic
                    | CodecError::BadField(_)
            ),
            "unexpected issue: {err:?}"
        );
    }

    #[test]
    fn validation_rejects_missing_trailer() {
        let bytes = sealed(2, 50);
        let cut = &bytes[..bytes.len() - TRAILER_BYTES];
        let err = validate_stream(Cursor::new(cut)).unwrap_err();
        assert_eq!(err.error, CodecError::MissingTrailer);
    }

    #[test]
    fn probe_rejects_v1_and_garbage() {
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&1u16.to_be_bytes());
        v1.extend_from_slice(&2u32.to_be_bytes());
        v1.extend_from_slice(&[0u8; 64]);
        assert_eq!(probe_trailer_seekable(&mut Cursor::new(&v1)), Err(CodecError::BadVersion(1)));
        assert_eq!(probe_trailer_seekable(&mut Cursor::new(&[0u8; 64])), Err(CodecError::BadMagic));
        assert_eq!(probe_trailer_seekable(&mut Cursor::new(&[0u8; 4])), Err(CodecError::Truncated));
    }
}
