//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding v2
//! chunk frames. Table-driven and dependency-free: the build environment
//! vendors no checksum crate, and the codec only needs integrity
//! detection, not cryptographic strength.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 hasher: feed bytes incrementally, then
/// [`Crc32::finish`]. The writer uses this to checksum a chunk payload
/// while encoding it, without a second pass.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"chunked streaming trace store";
        let mut h = Crc32::new();
        for part in data.chunks(7) {
            h.update(part);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u32..256).map(|i| (i * 7) as u8).collect();
        let reference = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
