//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding v2
//! and v3 chunk frames. Table-driven and dependency-free: the build
//! environment vendors no checksum crate, and the codec only needs
//! integrity detection, not cryptographic strength.
//!
//! The kernel is a *slice-by-16*: sixteen const-built 256-entry tables
//! let one loop iteration fold 16 input bytes into the running state with
//! sixteen independent table lookups and a xor tree, instead of the
//! classic one-lookup-per-byte Sarwate loop. The lookups of one iteration
//! have no serial dependency on each other (only iteration-to-iteration
//! through `crc`), so the CPU pipelines them; on commodity hardware this
//! is worth roughly an order of magnitude over the per-byte loop, which
//! is what closed the v2-write-throughput gap against v1
//! (`BENCH_trace.json`). Same polynomial, same bit order, bit-identical
//! checksums — every existing v1/v2 stream and golden stays valid.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Bytes folded per unrolled iteration.
const SLICE: usize = 16;

/// `TABLES[0]` is the classic Sarwate table; `TABLES[k][b]` is the CRC of
/// byte `b` followed by `k` zero bytes, which is what lets lane `k` of a
/// 16-byte block be looked up independently of the other lanes.
const fn build_tables() -> [[u32; 256]; SLICE] {
    let mut tables = [[0u32; 256]; SLICE];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < SLICE {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICE] = build_tables();

#[inline]
fn step_byte(crc: u32, b: u8) -> u32 {
    (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
}

/// Fold one 16-byte block into the state: the first four bytes are xored
/// into the running CRC (little-endian, matching the reflected bit
/// order), then all sixteen lanes are looked up independently.
#[inline]
fn step_block(crc: u32, block: &[u8; SLICE]) -> u32 {
    let lo = crc ^ u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
    TABLES[15][(lo & 0xFF) as usize]
        ^ TABLES[14][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[13][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[12][(lo >> 24) as usize]
        ^ TABLES[11][block[4] as usize]
        ^ TABLES[10][block[5] as usize]
        ^ TABLES[9][block[6] as usize]
        ^ TABLES[8][block[7] as usize]
        ^ TABLES[7][block[8] as usize]
        ^ TABLES[6][block[9] as usize]
        ^ TABLES[5][block[10] as usize]
        ^ TABLES[4][block[11] as usize]
        ^ TABLES[3][block[12] as usize]
        ^ TABLES[2][block[13] as usize]
        ^ TABLES[1][block[14] as usize]
        ^ TABLES[0][block[15] as usize]
}

/// Streaming CRC-32 hasher: feed bytes incrementally, then
/// [`Crc32::finish`]. The writer uses this to checksum a chunk payload
/// while encoding it, without a second pass.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut blocks = data.chunks_exact(SLICE);
        for block in &mut blocks {
            // chunks_exact guarantees the length; the conversion cannot
            // fail, and the unwrap_or keeps the path panic-free anyway.
            let block: &[u8; SLICE] = block.try_into().unwrap_or(&[0; SLICE]);
            crc = step_block(crc, block);
        }
        for &b in blocks.remainder() {
            crc = step_byte(crc, b);
        }
        self.state = crc;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original per-byte Sarwate loop, kept as the reference the
    /// sliced kernel must match bit-for-bit on every input.
    fn crc32_per_byte(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc = step_byte(crc, b);
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sliced_matches_per_byte_at_every_length() {
        // Lengths straddling the 16-byte block boundary are where a
        // slicing bug would hide: 0..=64 covers empty, sub-block, exact
        // multiples, and every remainder length.
        let data: Vec<u8> =
            (0u32..64).map(|i| (i.wrapping_mul(131).wrapping_add(7)) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), crc32_per_byte(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn streaming_equals_one_shot_at_odd_split_points() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 17 + 3) as u8).collect();
        let reference = crc32(&data);
        for split in [1usize, 7, 15, 16, 17, 33, 999] {
            let mut h = Crc32::new();
            for part in data.chunks(split) {
                h.update(part);
            }
            assert_eq!(h.finish(), reference, "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u32..256).map(|i| (i * 7) as u8).collect();
        let reference = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
