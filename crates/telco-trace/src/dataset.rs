//! The in-memory signaling dataset: the collection of handover records a
//! study run produces, with the slicing operations every analysis needs.

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_signaling::messages::HoType;

use crate::record::HoRecord;

/// The mobility-management signaling dataset of one study run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalingDataset {
    /// Number of study days covered.
    pub days: u32,
    records: Vec<HoRecord>,
}

impl SignalingDataset {
    /// Empty dataset covering `days` study days.
    pub fn new(days: u32) -> Self {
        SignalingDataset { days, records: Vec::new() }
    }

    /// Build from records (takes ownership; sorts by timestamp).
    pub fn from_records(days: u32, mut records: Vec<HoRecord>) -> Self {
        records.sort_by_key(|r| r.timestamp_ms);
        SignalingDataset { days, records }
    }

    /// Append a record (no sorting; callers appending out of order must
    /// call [`SignalingDataset::sort`] before range queries).
    pub fn push(&mut self, record: HoRecord) {
        self.records.push(record);
    }

    /// Extend with many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = HoRecord>) {
        self.records.extend(records);
    }

    /// Sort records by timestamp.
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| r.timestamp_ms);
    }

    /// All records.
    pub fn records(&self) -> &[HoRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one study day.
    pub fn day(&self, day: u32) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.day() == day)
    }

    /// Records of one handover type.
    pub fn of_type(&self, ho_type: HoType) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.ho_type() == ho_type)
    }

    /// Failures only.
    pub fn failures(&self) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(|r| r.is_failure())
    }

    /// Records of one UE.
    pub fn of_ue(&self, ue: UeId) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.ue == ue)
    }

    /// Overall handover-failure rate.
    pub fn hof_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.failures().count() as f64 / self.records.len() as f64
    }

    /// Handover counts per type, ordered as [`HoType::ALL`].
    pub fn counts_by_type(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for r in &self.records {
            counts[r.ho_type().index()] += 1;
        }
        counts
    }

    /// Average records per day.
    pub fn daily_mean(&self) -> f64 {
        if self.days == 0 {
            return 0.0;
        }
        self.records.len() as f64 / self.days as f64
    }

    /// Merge another dataset (same day span) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the day spans differ.
    pub fn merge(&mut self, other: SignalingDataset) {
        assert_eq!(self.days, other.days, "cannot merge datasets of different spans");
        self.records.extend(other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HoOutcome;
    use telco_signaling::causes::{CauseCode, PrincipalCause};
    use telco_topology::elements::SectorId;
    use telco_topology::rat::Rat;

    fn rec(ts: u64, ue: u32, target: Rat, fail: bool) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: target,
            outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
            cause: fail.then(|| CauseCode::principal(PrincipalCause::TargetLoadTooHigh)),
            duration_ms: 50.0,
            srvcc: false,
            messages: 12,
        }
    }

    fn dataset() -> SignalingDataset {
        SignalingDataset::from_records(
            2,
            vec![
                rec(100, 1, Rat::G4, false),
                rec(86_400_001, 1, Rat::G3, true),
                rec(50, 2, Rat::G4, false),
                rec(86_400_100, 2, Rat::G2, false),
            ],
        )
    }

    #[test]
    fn from_records_sorts() {
        let d = dataset();
        assert!(d.records().windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn day_filter() {
        let d = dataset();
        assert_eq!(d.day(0).count(), 2);
        assert_eq!(d.day(1).count(), 2);
        assert_eq!(d.day(2).count(), 0);
    }

    #[test]
    fn type_counts_and_hof_rate() {
        let d = dataset();
        assert_eq!(d.counts_by_type(), [2, 1, 1]);
        assert_eq!(d.hof_rate(), 0.25);
        assert_eq!(d.failures().count(), 1);
        assert_eq!(d.daily_mean(), 2.0);
    }

    #[test]
    fn ue_filter() {
        let d = dataset();
        assert_eq!(d.of_ue(UeId(1)).count(), 2);
        assert_eq!(d.of_ue(UeId(9)).count(), 0);
    }

    #[test]
    fn merge_same_span() {
        let mut a = dataset();
        let b = dataset();
        a.merge(b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_span_mismatch() {
        let mut a = dataset();
        a.merge(SignalingDataset::new(7));
    }

    #[test]
    fn empty_dataset_rates() {
        let d = SignalingDataset::new(0);
        assert_eq!(d.hof_rate(), 0.0);
        assert_eq!(d.daily_mean(), 0.0);
        assert!(d.is_empty());
    }
}
