//! The in-memory signaling dataset: the collection of handover records a
//! study run produces, with the slicing operations every analysis needs.

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_signaling::messages::HoType;

use crate::record::HoRecord;

/// The mobility-management signaling dataset of one study run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalingDataset {
    /// Number of study days covered.
    pub days: u32,
    records: Vec<HoRecord>,
}

impl SignalingDataset {
    /// Empty dataset covering `days` study days.
    pub fn new(days: u32) -> Self {
        SignalingDataset { days, records: Vec::new() }
    }

    /// Build from records (takes ownership; sorts by timestamp).
    pub fn from_records(days: u32, mut records: Vec<HoRecord>) -> Self {
        records.sort_by_key(|r| r.timestamp_ms);
        SignalingDataset { days, records }
    }

    /// Build from records already sorted by timestamp, skipping the
    /// re-sort (checked in debug builds). Used by the streaming merge
    /// paths, whose output is sorted by construction.
    pub(crate) fn from_sorted_records(days: u32, records: Vec<HoRecord>) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms),
            "records are not timestamp-sorted"
        );
        SignalingDataset { days, records }
    }

    /// Append a record (no sorting; callers appending out of order must
    /// call [`SignalingDataset::sort`] before range queries).
    pub fn push(&mut self, record: HoRecord) {
        self.records.push(record);
    }

    /// Extend with many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = HoRecord>) {
        self.records.extend(records);
    }

    /// Sort records by timestamp.
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| r.timestamp_ms);
    }

    /// All records.
    pub fn records(&self) -> &[HoRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one study day.
    pub fn day(&self, day: u32) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.day() == day)
    }

    /// Records of one handover type.
    pub fn of_type(&self, ho_type: HoType) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.ho_type() == ho_type)
    }

    /// Failures only.
    pub fn failures(&self) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(|r| r.is_failure())
    }

    /// Records of one UE.
    pub fn of_ue(&self, ue: UeId) -> impl Iterator<Item = &HoRecord> + '_ {
        self.records.iter().filter(move |r| r.ue == ue)
    }

    /// Overall handover-failure rate.
    pub fn hof_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.failures().count() as f64 / self.records.len() as f64
    }

    /// Handover counts per type, ordered as [`HoType::ALL`].
    pub fn counts_by_type(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for r in &self.records {
            counts[r.ho_type().index()] += 1;
        }
        counts
    }

    /// Average records per day.
    pub fn daily_mean(&self) -> f64 {
        if self.days == 0 {
            return 0.0;
        }
        self.records.len() as f64 / self.days as f64
    }

    /// Merge another dataset (same day span) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the day spans differ.
    pub fn merge(&mut self, other: SignalingDataset) {
        assert_eq!(self.days, other.days, "cannot merge datasets of different spans");
        self.records.extend(other.records);
    }

    /// Reserve room for `additional` more records.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// K-way merge of timestamp-sorted runs into one sorted dataset —
    /// O(N log k) instead of the O(N log N) of concatenate-and-sort.
    ///
    /// Ties break on run index, so the result is exactly the stable
    /// timestamp sort of the runs' concatenation: callers that order runs
    /// canonically (e.g. the parallel study runner, day-major) get output
    /// byte-identical to a sequential append-then-stable-sort.
    ///
    /// # Panics
    ///
    /// Panics if a run's day span differs from `days` or a run is not
    /// sorted (debug builds only).
    pub fn merge_sorted_runs(days: u32, runs: Vec<SignalingDataset>) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let total = runs.iter().map(|r| r.len()).sum();
        let mut records: Vec<HoRecord> = Vec::with_capacity(total);
        let mut cursors = vec![0usize; runs.len()];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(runs.len());
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.days, days, "cannot merge runs of different spans");
            debug_assert!(
                run.records.windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms),
                "run {i} is not timestamp-sorted"
            );
            if let Some(first) = run.records.first() {
                heap.push(Reverse((first.timestamp_ms, i)));
            }
        }
        while let Some(Reverse((_, i))) = heap.pop() {
            records.push(runs[i].records[cursors[i]]);
            cursors[i] += 1;
            if let Some(next) = runs[i].records.get(cursors[i]) {
                heap.push(Reverse((next.timestamp_ms, i)));
            }
        }
        SignalingDataset { days, records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HoOutcome;
    use telco_signaling::causes::{CauseCode, PrincipalCause};
    use telco_topology::elements::SectorId;
    use telco_topology::rat::Rat;

    fn rec(ts: u64, ue: u32, target: Rat, fail: bool) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(1),
            target_sector: SectorId(2),
            source_rat: Rat::G4,
            target_rat: target,
            outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
            cause: fail.then(|| CauseCode::principal(PrincipalCause::TargetLoadTooHigh)),
            duration_ms: 50.0,
            srvcc: false,
            messages: 12,
        }
    }

    fn dataset() -> SignalingDataset {
        SignalingDataset::from_records(
            2,
            vec![
                rec(100, 1, Rat::G4, false),
                rec(86_400_001, 1, Rat::G3, true),
                rec(50, 2, Rat::G4, false),
                rec(86_400_100, 2, Rat::G2, false),
            ],
        )
    }

    #[test]
    fn from_records_sorts() {
        let d = dataset();
        assert!(d.records().windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn day_filter() {
        let d = dataset();
        assert_eq!(d.day(0).count(), 2);
        assert_eq!(d.day(1).count(), 2);
        assert_eq!(d.day(2).count(), 0);
    }

    #[test]
    fn type_counts_and_hof_rate() {
        let d = dataset();
        assert_eq!(d.counts_by_type(), [2, 1, 1]);
        assert_eq!(d.hof_rate(), 0.25);
        assert_eq!(d.failures().count(), 1);
        assert_eq!(d.daily_mean(), 2.0);
    }

    #[test]
    fn ue_filter() {
        let d = dataset();
        assert_eq!(d.of_ue(UeId(1)).count(), 2);
        assert_eq!(d.of_ue(UeId(9)).count(), 0);
    }

    #[test]
    fn merge_same_span() {
        let mut a = dataset();
        let b = dataset();
        a.merge(b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_span_mismatch() {
        let mut a = dataset();
        a.merge(SignalingDataset::new(7));
    }

    #[test]
    fn merge_sorted_runs_equals_stable_sort_of_concatenation() {
        // Interleaved timestamps with cross-run ties: the merge must keep
        // equal timestamps in run order (stable-sort equivalence).
        let runs = vec![
            SignalingDataset::from_records(
                2,
                vec![rec(100, 1, Rat::G4, false), rec(300, 2, Rat::G3, true)],
            ),
            SignalingDataset::new(2),
            SignalingDataset::from_records(
                2,
                vec![rec(50, 3, Rat::G4, false), rec(100, 4, Rat::G4, false)],
            ),
            SignalingDataset::from_records(2, vec![rec(100, 5, Rat::G2, false)]),
        ];
        let mut reference: Vec<HoRecord> =
            runs.iter().flat_map(|r| r.records().iter().copied()).collect();
        reference.sort_by_key(|r| r.timestamp_ms);
        let merged = SignalingDataset::merge_sorted_runs(2, runs);
        assert_eq!(merged.records(), &reference[..]);
        assert_eq!(merged.len(), 5);
        // The ties at t=100 stayed in run order: UE 1, then 4, then 5.
        let tied: Vec<u32> =
            merged.records().iter().filter(|r| r.timestamp_ms == 100).map(|r| r.ue.0).collect();
        assert_eq!(tied, vec![1, 4, 5]);
    }

    #[test]
    fn merge_sorted_runs_of_nothing_is_empty() {
        let merged = SignalingDataset::merge_sorted_runs(3, Vec::new());
        assert!(merged.is_empty());
        assert_eq!(merged.days, 3);
    }

    #[test]
    #[should_panic]
    fn merge_sorted_runs_rejects_span_mismatch() {
        SignalingDataset::merge_sorted_runs(2, vec![SignalingDataset::new(7)]);
    }

    #[test]
    fn empty_dataset_rates() {
        let d = SignalingDataset::new(0);
        assert_eq!(d.hof_rate(), 0.0);
        assert_eq!(d.daily_mean(), 0.0);
        assert!(d.is_empty());
    }
}
