//! Format v3 chunk payloads: struct-of-arrays column encoding.
//!
//! The aggregate-heavy access patterns of the analyses (per-sector,
//! per-day, per-type counting — §4–§6 of the paper) touch two or three
//! fields of every record; the row-oriented 36-byte frames of v1/v2 make
//! every scan drag the full record through the cache anyway. A v3 chunk
//! payload instead stores one column per [`HoRecord`] field, each with a
//! lightweight compression chosen for that field's distribution:
//!
//! | id | column          | encoding                                      |
//! |----|-----------------|-----------------------------------------------|
//! | 0  | `timestamp_ms`  | first value varint, then zigzag varint deltas |
//! | 1  | `ue`            | varint                                        |
//! | 2  | `source_sector` | chunk-local dictionary + bit-packed indexes   |
//! | 3  | `target_sector` | chunk-local dictionary + bit-packed indexes   |
//! | 4  | `source_rat`    | bit-packed, 2 bits/record                     |
//! | 5  | `target_rat`    | bit-packed, 2 bits/record                     |
//! | 6  | flags           | bit-packed, 3 bits/record (fail·srvcc·cause)  |
//! | 7  | `cause`         | varint, one per record with the cause flag    |
//! | 8  | `duration_ms`   | raw `f32` little-endian (floats don't varint) |
//! | 9  | `messages`      | varint                                        |
//!
//! Each column is framed as `u8 id | u32 len (BE) | body`, in ascending
//! id order, so a decode failure names the exact column
//! ([`CodecError::BadField`]) even though the recovery unit stays one
//! chunk (a record needs all its columns). Timestamps are near-sorted
//! with small inter-record gaps, so deltas shrink them from 8 bytes to
//! 1–3; deltas are *zigzag-encoded wrapping* differences, so a
//! timestamp regression inside a chunk (unsorted input) still
//! round-trips losslessly. Sector columns dictionary-code because a
//! chunk (one study day of one worker's records) touches few distinct
//! sectors; dictionary entries are emitted in first-appearance order —
//! a deterministic function of the input, per the crate's
//! deny-nondeterminism invariant (the lookup map is never iterated).
//!
//! The container framing around these payloads (chunk headers, CRC,
//! trailer) lives in [`crate::store`]; this module is pure
//! bytes-to-columns.

use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;

use crate::hash::FxHashMap;
use crate::io::CodecError;
use crate::record::{HoOutcome, HoRecord};

/// Column-group ids, in payload order.
const COL_TIMESTAMP: u8 = 0;
const COL_UE: u8 = 1;
const COL_SRC_SECTOR: u8 = 2;
const COL_TGT_SECTOR: u8 = 3;
const COL_SRC_RAT: u8 = 4;
const COL_TGT_RAT: u8 = 5;
const COL_FLAGS: u8 = 6;
const COL_CAUSE: u8 = 7;
const COL_DURATION: u8 = 8;
const COL_MESSAGES: u8 = 9;

/// Number of column groups in a v3 payload.
const COLUMNS: usize = 10;

/// Record flag bits (column 6).
const FLAG_FAILURE: u64 = 1;
const FLAG_SRVCC: u64 = 2;
const FLAG_CAUSE: u64 = 4;

// ---- primitive encoders ----------------------------------------------------

/// Append an LEB128 varint (7 bits per byte, continuation in the MSB).
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-fold a signed delta so small magnitudes of either sign varint
/// into few bytes.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LSB-first bit packer for the fixed-width columns (dictionary indexes,
/// RATs, flags).
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    filled: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, acc: 0, filled: 0 }
    }

    /// Push the low `width` bits of `v` (width in 1..=32; zero-width
    /// columns skip the bit stream entirely).
    #[inline]
    fn push(&mut self, v: u64, width: u32) {
        self.acc |= (v & ((1u64 << width) - 1)) << self.filled;
        self.filled += width;
        while self.filled >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.filled -= 8;
        }
    }

    fn finish(self) {
        if self.filled > 0 {
            self.out.push(self.acc as u8);
        }
    }
}

/// LSB-first bit unpacker mirroring [`BitWriter`].
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    avail: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, avail: 0 }
    }

    /// The next `width` bits (width in 1..=32), or `None` past the end.
    #[inline]
    fn pull(&mut self, width: u32) -> Option<u64> {
        while self.avail < width {
            let &byte = self.buf.get(self.pos)?;
            self.acc |= (byte as u64) << self.avail;
            self.avail += 8;
            self.pos += 1;
        }
        let v = self.acc & ((1u64 << width) - 1);
        self.acc >>= width;
        self.avail -= width;
        Some(v)
    }

    /// Whether any set bit remains unconsumed (padding bits must be 0).
    fn leftover_is_clean(&self) -> bool {
        self.acc == 0 && self.buf[self.pos.min(self.buf.len())..].iter().all(|&b| b == 0)
    }
}

/// Bits needed to index a dictionary of `len` entries (0 for ≤1 entry).
#[inline]
fn index_width(len: usize) -> u32 {
    if len <= 1 {
        0
    } else {
        u64::BITS - (len as u64 - 1).leading_zeros()
    }
}

// ---- encoder ---------------------------------------------------------------

/// Chunk-local dictionary builder: first-appearance order, FxHash lookup.
#[derive(Debug, Default)]
struct DictBuilder {
    lookup: FxHashMap<u32, u32>,
    order: Vec<u32>,
    indexes: Vec<u32>,
}

impl DictBuilder {
    fn clear(&mut self) {
        self.lookup.clear();
        self.order.clear();
        self.indexes.clear();
    }

    #[inline]
    fn push(&mut self, value: u32) {
        let next = self.order.len() as u32;
        let idx = *self.lookup.entry(value).or_insert_with(|| {
            self.order.push(value);
            next
        });
        self.indexes.push(idx);
    }

    /// Emit `varint len | entries (varint, appearance order) | packed
    /// indexes` into `out`.
    fn emit(&self, out: &mut Vec<u8>) {
        put_varint(out, self.order.len() as u64);
        for &v in &self.order {
            put_varint(out, v as u64);
        }
        let width = index_width(self.order.len());
        if width > 0 {
            let mut bits = BitWriter::new(out);
            for &idx in &self.indexes {
                bits.push(idx as u64, width);
            }
            bits.finish();
        }
    }
}

/// Reusable v3 column encoder. Holds the dictionary scratch so a writer
/// encoding many chunks performs no steady-state map allocations.
#[derive(Debug, Default)]
pub struct ColumnEncoder {
    src_dict: DictBuilder,
    tgt_dict: DictBuilder,
    scratch: Vec<u8>,
}

/// Write one column group frame: `id | u32 len | body`.
fn put_group(out: &mut Vec<u8>, id: u8, body: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

impl ColumnEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `records` as a v3 columnar payload, appended to `out`.
    pub fn encode(&mut self, records: &[HoRecord], out: &mut Vec<u8>) {
        let body = &mut self.scratch;

        // Column 0: timestamps — absolute first value, wrapping zigzag
        // deltas after (lossless even when a chunk is unsorted).
        body.clear();
        let mut prev = 0u64;
        for (i, r) in records.iter().enumerate() {
            if i == 0 {
                put_varint(body, r.timestamp_ms);
            } else {
                put_varint(body, zigzag(r.timestamp_ms.wrapping_sub(prev) as i64));
            }
            prev = r.timestamp_ms;
        }
        put_group(out, COL_TIMESTAMP, body);

        // Column 1: UE ids, plain varint.
        body.clear();
        for r in records {
            put_varint(body, r.ue.0 as u64);
        }
        put_group(out, COL_UE, body);

        // Columns 2–3: sector dictionaries.
        self.src_dict.clear();
        self.tgt_dict.clear();
        for r in records {
            self.src_dict.push(r.source_sector.0);
            self.tgt_dict.push(r.target_sector.0);
        }
        body.clear();
        self.src_dict.emit(body);
        put_group(out, COL_SRC_SECTOR, body);
        body.clear();
        self.tgt_dict.emit(body);
        put_group(out, COL_TGT_SECTOR, body);

        // Columns 4–5: RATs, 2 bits each.
        body.clear();
        {
            let mut bits = BitWriter::new(body);
            for r in records {
                bits.push(r.source_rat.index() as u64, 2);
            }
            bits.finish();
        }
        put_group(out, COL_SRC_RAT, body);
        body.clear();
        {
            let mut bits = BitWriter::new(body);
            for r in records {
                bits.push(r.target_rat.index() as u64, 2);
            }
            bits.finish();
        }
        put_group(out, COL_TGT_RAT, body);

        // Column 6: flags, 3 bits (failure | srvcc | cause-present).
        body.clear();
        {
            let mut bits = BitWriter::new(body);
            for r in records {
                let flags = (u64::from(r.outcome == HoOutcome::Failure) * FLAG_FAILURE)
                    | (u64::from(r.srvcc) * FLAG_SRVCC)
                    | (u64::from(r.cause.is_some()) * FLAG_CAUSE);
                bits.push(flags, 3);
            }
            bits.finish();
        }
        put_group(out, COL_FLAGS, body);

        // Column 7: causes — sparse, one varint per flagged record.
        body.clear();
        for r in records {
            if let Some(c) = r.cause {
                put_varint(body, c.0 as u64);
            }
        }
        put_group(out, COL_CAUSE, body);

        // Column 8: durations — raw f32 bits; float payloads are
        // high-entropy in the low (mantissa) bits, so varint would grow
        // them.
        body.clear();
        for r in records {
            body.extend_from_slice(&r.duration_ms.to_bits().to_le_bytes());
        }
        put_group(out, COL_DURATION, body);

        // Column 9: message counts, plain varint.
        body.clear();
        for r in records {
            put_varint(body, r.messages as u64);
        }
        put_group(out, COL_MESSAGES, body);
    }
}

// ---- decoder ---------------------------------------------------------------
// telco-lint: deny-panic(begin)
// The decode path ingests external bytes (CRC-checked, but a checksum
// collision or writer bug must still surface as a typed CodecError,
// never a panic or an unbounded allocation).

/// Byte cursor over one column body.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    #[inline]
    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = self.buf.get(self.pos)?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return None; // overflows u64
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

/// Split the next `id | u32 len | body` group off `payload`, verifying
/// the id. Returns the body and the remaining payload.
fn next_group<'a>(
    payload: &'a [u8],
    expect_id: u8,
    name: &'static str,
) -> Result<(&'a [u8], &'a [u8]), CodecError> {
    let (&id, rest) = payload.split_first().ok_or(CodecError::BadField("column_id"))?;
    if id != expect_id {
        return Err(CodecError::BadField("column_id"));
    }
    let (len_bytes, rest) = rest.split_first_chunk::<4>().ok_or(CodecError::BadField(name))?;
    let len = u32::from_be_bytes(*len_bytes) as usize;
    if len > rest.len() {
        return Err(CodecError::BadField(name));
    }
    let (body, remaining) = rest.split_at(len);
    Ok((body, remaining))
}

fn rat_from(code: u64) -> Result<Rat, CodecError> {
    Rat::ALL.get(code as usize).copied().ok_or(CodecError::BadField("rat"))
}

/// A placeholder row; every field is overwritten by its column pass.
const TEMPLATE: HoRecord = HoRecord {
    timestamp_ms: 0,
    ue: UeId(0),
    source_sector: SectorId(0),
    target_sector: SectorId(0),
    source_rat: Rat::G4,
    target_rat: Rat::G4,
    outcome: HoOutcome::Success,
    cause: None,
    duration_ms: 0.0,
    srvcc: false,
    messages: 0,
};

/// Decode a chunk-local dictionary column into per-record values, one
/// `set` call per record (in record order).
fn decode_dict(
    body: &[u8],
    count: usize,
    name: &'static str,
    mut set: impl FnMut(usize, u32),
) -> Result<(), CodecError> {
    let mut bytes = ByteReader::new(body);
    let dict_len = bytes.varint().ok_or(CodecError::BadField(name))? as usize;
    if dict_len > count || (dict_len == 0) != (count == 0) {
        // More entries than records means the dictionary itself is
        // corrupt — and bounding it here keeps a flipped length from
        // driving a giant allocation.
        return Err(CodecError::BadField(name));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let v = bytes.varint().ok_or(CodecError::BadField(name))?;
        dict.push(u32::try_from(v).map_err(|_| CodecError::BadField(name))?);
    }
    let width = index_width(dict_len);
    if width == 0 {
        if !bytes.exhausted() {
            return Err(CodecError::BadField(name));
        }
        let value = dict.first().copied().unwrap_or(0);
        for i in 0..count {
            set(i, value);
        }
        return Ok(());
    }
    let packed = bytes.buf.get(bytes.pos..).unwrap_or(&[]);
    let mut bits = BitReader::new(packed);
    for i in 0..count {
        let idx = bits.pull(width).ok_or(CodecError::BadField(name))? as usize;
        let value = *dict.get(idx).ok_or(CodecError::BadField(name))?;
        set(i, value);
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField(name));
    }
    Ok(())
}

/// Decode a v3 columnar payload of `count` records into `out` (cleared
/// first). Strict: every column must hold exactly `count` values with no
/// trailing garbage, every dictionary index must be in range, every enum
/// code valid — anything else is a typed [`CodecError::BadField`] naming
/// the offending column.
pub fn decode_columns(
    payload: &[u8],
    count: usize,
    out: &mut Vec<HoRecord>,
) -> Result<(), CodecError> {
    out.clear();
    out.resize(count, TEMPLATE);

    // Column 0: timestamps.
    let (body, payload) = next_group(payload, COL_TIMESTAMP, "timestamp")?;
    let mut bytes = ByteReader::new(body);
    let mut prev = 0u64;
    for (i, r) in out.iter_mut().enumerate() {
        let raw = bytes.varint().ok_or(CodecError::BadField("timestamp"))?;
        let ts = if i == 0 { raw } else { prev.wrapping_add(unzigzag(raw) as u64) };
        r.timestamp_ms = ts;
        prev = ts;
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("timestamp"));
    }

    // Column 1: UE ids.
    let (body, payload) = next_group(payload, COL_UE, "ue")?;
    let mut bytes = ByteReader::new(body);
    for r in out.iter_mut() {
        let v = bytes.varint().ok_or(CodecError::BadField("ue"))?;
        r.ue = UeId(u32::try_from(v).map_err(|_| CodecError::BadField("ue"))?);
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("ue"));
    }

    // Columns 2–3: sector dictionaries.
    let (body, payload) = next_group(payload, COL_SRC_SECTOR, "source_sector")?;
    {
        let rows = &mut *out;
        decode_dict(body, count, "source_sector", |i, v| {
            if let Some(r) = rows.get_mut(i) {
                r.source_sector = SectorId(v);
            }
        })?;
    }
    let (body, payload) = next_group(payload, COL_TGT_SECTOR, "target_sector")?;
    {
        let rows = &mut *out;
        decode_dict(body, count, "target_sector", |i, v| {
            if let Some(r) = rows.get_mut(i) {
                r.target_sector = SectorId(v);
            }
        })?;
    }

    // Columns 4–5: RATs.
    let (body, payload) = next_group(payload, COL_SRC_RAT, "source_rat")?;
    let mut bits = BitReader::new(body);
    for r in out.iter_mut() {
        r.source_rat = rat_from(bits.pull(2).ok_or(CodecError::BadField("source_rat"))?)?;
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("source_rat"));
    }
    let (body, payload) = next_group(payload, COL_TGT_RAT, "target_rat")?;
    let mut bits = BitReader::new(body);
    for r in out.iter_mut() {
        r.target_rat = rat_from(bits.pull(2).ok_or(CodecError::BadField("target_rat"))?)?;
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("target_rat"));
    }

    // Column 6: flags. Cause presence is noted per record so column 7
    // knows how many entries to expect.
    let (body, payload) = next_group(payload, COL_FLAGS, "flags")?;
    let mut bits = BitReader::new(body);
    let mut causes_expected = 0usize;
    for r in out.iter_mut() {
        let flags = bits.pull(3).ok_or(CodecError::BadField("flags"))?;
        r.outcome = if flags & FLAG_FAILURE != 0 { HoOutcome::Failure } else { HoOutcome::Success };
        r.srvcc = flags & FLAG_SRVCC != 0;
        if flags & FLAG_CAUSE != 0 {
            // Tagged with a placeholder; column 7 fills the real code.
            r.cause = Some(CauseCode(0));
            causes_expected += 1;
        } else if r.outcome == HoOutcome::Failure {
            // Same invariant the row codec enforces: a failure without
            // a cause code is not a valid record.
            return Err(CodecError::BadField("cause"));
        }
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("flags"));
    }

    // Column 7: causes.
    let (body, payload) = next_group(payload, COL_CAUSE, "cause")?;
    let mut bytes = ByteReader::new(body);
    let mut causes_seen = 0usize;
    for r in out.iter_mut() {
        if r.cause.is_some() {
            let v = bytes.varint().ok_or(CodecError::BadField("cause"))?;
            r.cause = Some(CauseCode(u16::try_from(v).map_err(|_| CodecError::BadField("cause"))?));
            causes_seen += 1;
        }
    }
    if causes_seen != causes_expected || !bytes.exhausted() {
        return Err(CodecError::BadField("cause"));
    }

    // Column 8: durations.
    let (body, payload) = next_group(payload, COL_DURATION, "duration")?;
    let mut bytes = ByteReader::new(body);
    for r in out.iter_mut() {
        let raw = bytes.take(4).ok_or(CodecError::BadField("duration"))?;
        let mut word = [0u8; 4];
        word.copy_from_slice(raw.get(..4).unwrap_or(&[0; 4]));
        r.duration_ms = f32::from_bits(u32::from_le_bytes(word));
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("duration"));
    }

    // Column 9: message counts.
    let (body, payload) = next_group(payload, COL_MESSAGES, "messages")?;
    let mut bytes = ByteReader::new(body);
    for r in out.iter_mut() {
        let v = bytes.varint().ok_or(CodecError::BadField("messages"))?;
        r.messages = u16::try_from(v).map_err(|_| CodecError::BadField("messages"))?;
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("messages"));
    }

    // Trailing bytes after the last column mean the payload length lies.
    if !payload.is_empty() {
        return Err(CodecError::BadField("column_id"));
    }
    Ok(())
}

// telco-lint: deny-panic(end)

/// Number of column groups a valid payload carries (exported for tests
/// and diagnostics).
pub const COLUMN_COUNT: usize = COLUMNS;

#[cfg(test)]
mod tests {
    use super::*;
    use telco_signaling::causes::{CauseCode, PrincipalCause};

    fn rec(ts: u64, ue: u32, sector: u32, fail: bool) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(sector),
            target_sector: SectorId(sector + 1),
            source_rat: Rat::G4,
            target_rat: if fail { Rat::G3 } else { Rat::G4 },
            outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
            cause: fail.then(|| CauseCode::principal(PrincipalCause::TargetLoadTooHigh)),
            duration_ms: 42.5,
            srvcc: fail,
            messages: 12,
        }
    }

    fn roundtrip(records: &[HoRecord]) -> Vec<HoRecord> {
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(records, &mut payload);
        let mut out = Vec::new();
        decode_columns(&payload, records.len(), &mut out).expect("clean payload decodes");
        out
    }

    #[test]
    fn empty_chunk_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn typical_chunk_roundtrips_and_compresses() {
        let records: Vec<HoRecord> = (0..1000)
            .map(|i| rec(1_000_000 + i * 350, i as u32 % 40, i as u32 % 7, i % 9 == 0))
            .collect();
        assert_eq!(roundtrip(&records), records);
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let row_bytes = records.len() * crate::io::RECORD_BYTES;
        assert!(
            payload.len() * 2 < row_bytes,
            "columnar payload {} not < half of row payload {row_bytes}",
            payload.len()
        );
    }

    #[test]
    fn timestamp_regressions_roundtrip() {
        // Unsorted timestamps, including u64 extremes: the wrapping
        // zigzag deltas must be lossless.
        let ts = [5u64, 3, 10, u64::MAX, 0, u64::MAX / 2, 7];
        let records: Vec<HoRecord> =
            ts.iter().enumerate().map(|(i, &t)| rec(t, i as u32, 1, false)).collect();
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn single_sector_chunk_uses_zero_width_indexes() {
        // All records share one sector pair → dictionary of 1, no index
        // bits at all.
        let records: Vec<HoRecord> = (0..64).map(|i| rec(i * 10, i as u32, 9, false)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        assert_eq!(roundtrip(&records), records);
        // Row encoding of the two sector columns alone: 8 bytes/record.
        assert!(payload.len() < records.len() * 20);
    }

    #[test]
    fn truncated_column_reports_its_name() {
        let records: Vec<HoRecord> = (0..10).map(|i| rec(i, i as u32, i as u32, false)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let mut out = Vec::new();
        // Cutting anywhere must produce a typed error, never a panic.
        for cut in 0..payload.len() {
            let err = decode_columns(&payload[..cut], records.len(), &mut out)
                .expect_err("truncated payload must not decode");
            assert!(matches!(err, CodecError::BadField(_)), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let records: Vec<HoRecord> =
            (0..50).map(|i| rec(i * 97, i as u32, i as u32 % 5, i % 4 == 0)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let mut out = Vec::new();
        for pos in 0..payload.len() {
            for bit in 0..8 {
                let mut bad = payload.clone();
                bad[pos] ^= 1 << bit;
                // May decode to different records (CRC catches this a
                // layer up) or error — the property is no panic and no
                // giant allocation.
                let _ = decode_columns(&bad, records.len(), &mut out);
            }
        }
    }

    #[test]
    fn dictionary_overflow_rejected() {
        // A dictionary claiming more entries than the chunk has records
        // is corrupt by construction and must not allocate.
        let records = vec![rec(1, 1, 1, false)];
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        // Column 2 starts after columns 0 and 1; find it by scanning
        // group frames.
        let mut pos = 0usize;
        for _ in 0..2 {
            let len = u32::from_be_bytes([
                payload[pos + 1],
                payload[pos + 2],
                payload[pos + 3],
                payload[pos + 4],
            ]);
            pos += 5 + len as usize;
        }
        assert_eq!(payload[pos], COL_SRC_SECTOR);
        // First body byte is the dict_len varint (1) — forge a huge one.
        payload[pos + 5] = 0xFF;
        payload.insert(pos + 6, 0xFF);
        payload.insert(pos + 7, 0x7F);
        let mut out = Vec::new();
        let err = decode_columns(&payload, 1, &mut out).unwrap_err();
        assert_eq!(err, CodecError::BadField("source_sector"));
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut bytes = ByteReader::new(&[0xFF; 11]);
        assert_eq!(bytes.varint(), None);
        // Exactly 10 bytes with a high final byte overflows u64 too.
        let mut bytes =
            ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
        assert_eq!(bytes.varint(), None);
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
