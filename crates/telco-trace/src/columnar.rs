//! Format v3 chunk payloads: struct-of-arrays column encoding.
//!
//! The aggregate-heavy access patterns of the analyses (per-sector,
//! per-day, per-type counting — §4–§6 of the paper) touch two or three
//! fields of every record; the row-oriented 36-byte frames of v1/v2 make
//! every scan drag the full record through the cache anyway. A v3 chunk
//! payload instead stores one column per [`HoRecord`] field, each with a
//! lightweight compression chosen for that field's distribution:
//!
//! | id | column          | encoding                                      |
//! |----|-----------------|-----------------------------------------------|
//! | 0  | `timestamp_ms`  | first value varint, then zigzag varint deltas |
//! | 1  | `ue`            | varint                                        |
//! | 2  | `source_sector` | chunk-local dictionary + bit-packed indexes   |
//! | 3  | `target_sector` | chunk-local dictionary + bit-packed indexes   |
//! | 4  | `source_rat`    | bit-packed, 2 bits/record                     |
//! | 5  | `target_rat`    | bit-packed, 2 bits/record                     |
//! | 6  | flags           | bit-packed, 3 bits/record (fail·srvcc·cause)  |
//! | 7  | `cause`         | varint, one per record with the cause flag    |
//! | 8  | `duration_ms`   | raw `f32` little-endian (floats don't varint) |
//! | 9  | `messages`      | varint                                        |
//!
//! Each column is framed as `u8 id | u32 len (BE) | body`, in ascending
//! id order, so a decode failure names the exact column
//! ([`CodecError::BadField`]) even though the recovery unit stays one
//! chunk (a record needs all its columns). Timestamps are near-sorted
//! with small inter-record gaps, so deltas shrink them from 8 bytes to
//! 1–3; deltas are *zigzag-encoded wrapping* differences, so a
//! timestamp regression inside a chunk (unsorted input) still
//! round-trips losslessly. Sector columns dictionary-code because a
//! chunk (one study day of one worker's records) touches few distinct
//! sectors; dictionary entries are emitted in first-appearance order —
//! a deterministic function of the input, per the crate's
//! deny-nondeterminism invariant (the lookup map is never iterated).
//!
//! Decoding targets a [`ColumnBatch`] — reusable struct-of-arrays
//! buffers, one `Vec` per column — so the analysis sweep can scan
//! columns directly without materializing per-record [`HoRecord`] rows;
//! [`ColumnBatch::rows`] rebuilds rows on demand for row-oriented
//! consumers. The container framing around these payloads (chunk
//! headers, CRC, trailer) lives in [`crate::store`]; this module is pure
//! bytes-to-columns.

use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;

use crate::hash::FxHashMap;
use crate::io::CodecError;
use crate::record::{HoOutcome, HoRecord};

/// Column-group ids, in payload order.
const COL_TIMESTAMP: u8 = 0;
const COL_UE: u8 = 1;
const COL_SRC_SECTOR: u8 = 2;
const COL_TGT_SECTOR: u8 = 3;
const COL_SRC_RAT: u8 = 4;
const COL_TGT_RAT: u8 = 5;
const COL_FLAGS: u8 = 6;
const COL_CAUSE: u8 = 7;
const COL_DURATION: u8 = 8;
const COL_MESSAGES: u8 = 9;

/// Number of column groups in a v3 payload.
const COLUMNS: usize = 10;

/// Record flag bit (column 6): the handover failed.
pub const FLAG_FAILURE: u8 = 1;
/// Record flag bit (column 6): the handover was an SRVCC fallback.
pub const FLAG_SRVCC: u8 = 2;
/// Record flag bit (column 6): the record carries a cause code.
pub const FLAG_CAUSE: u8 = 4;

/// The column-6 flag byte of a row (shared by the encoder and the
/// row→column transpose so both agree bit-for-bit).
#[inline]
fn row_flags(r: &HoRecord) -> u8 {
    (u8::from(r.outcome == HoOutcome::Failure) * FLAG_FAILURE)
        | (u8::from(r.srvcc) * FLAG_SRVCC)
        | (u8::from(r.cause.is_some()) * FLAG_CAUSE)
}

// ---- primitive encoders ----------------------------------------------------

/// Append an LEB128 varint (7 bits per byte, continuation in the MSB).
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-fold a signed delta so small magnitudes of either sign varint
/// into few bytes.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LSB-first bit packer for the fixed-width columns (dictionary indexes,
/// RATs, flags).
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    filled: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, acc: 0, filled: 0 }
    }

    /// Push the low `width` bits of `v` (width in 1..=32; zero-width
    /// columns skip the bit stream entirely).
    #[inline]
    fn push(&mut self, v: u64, width: u32) {
        self.acc |= (v & ((1u64 << width) - 1)) << self.filled;
        self.filled += width;
        while self.filled >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.filled -= 8;
        }
    }

    fn finish(self) {
        if self.filled > 0 {
            self.out.push(self.acc as u8);
        }
    }
}

/// LSB-first bit unpacker mirroring [`BitWriter`].
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    avail: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, avail: 0 }
    }

    /// The next `width` bits (width in 1..=32), or `None` past the end.
    #[inline]
    fn pull(&mut self, width: u32) -> Option<u64> {
        while self.avail < width {
            let &byte = self.buf.get(self.pos)?;
            self.acc |= (byte as u64) << self.avail;
            self.avail += 8;
            self.pos += 1;
        }
        let v = self.acc & ((1u64 << width) - 1);
        self.acc >>= width;
        self.avail -= width;
        Some(v)
    }

    /// Whether any set bit remains unconsumed (padding bits must be 0).
    fn leftover_is_clean(&self) -> bool {
        self.acc == 0 && self.buf[self.pos.min(self.buf.len())..].iter().all(|&b| b == 0)
    }
}

/// Bits needed to index a dictionary of `len` entries (0 for ≤1 entry).
#[inline]
fn index_width(len: usize) -> u32 {
    if len <= 1 {
        0
    } else {
        u64::BITS - (len as u64 - 1).leading_zeros()
    }
}

// ---- encoder ---------------------------------------------------------------

/// Chunk-local dictionary builder: first-appearance order, FxHash
/// lookup. A chunk is one worker's slice of one study day, so the
/// distinct-value set stays small and the map cache-resident — a
/// direct-mapped id table was measured *slower* here (it scatters
/// probes across an `n_sectors`-sized array instead of a few hot
/// buckets).
#[derive(Debug, Default)]
struct DictBuilder {
    lookup: FxHashMap<u32, u32>,
    order: Vec<u32>,
    indexes: Vec<u32>,
}

impl DictBuilder {
    fn clear(&mut self) {
        self.lookup.clear();
        self.order.clear();
        self.indexes.clear();
    }

    #[inline]
    fn push(&mut self, value: u32) {
        let next = self.order.len() as u32;
        let idx = *self.lookup.entry(value).or_insert_with(|| {
            self.order.push(value);
            next
        });
        self.indexes.push(idx);
    }

    /// Emit `varint len | entries (varint, appearance order) | packed
    /// indexes` into `out`.
    fn emit(&self, out: &mut Vec<u8>) {
        put_varint(out, self.order.len() as u64);
        for &v in &self.order {
            put_varint(out, v as u64);
        }
        let width = index_width(self.order.len());
        if width > 0 {
            let mut bits = BitWriter::new(out);
            for &idx in &self.indexes {
                bits.push(idx as u64, width);
            }
            bits.finish();
        }
    }
}

/// Reusable v3 column encoder. Holds the dictionary scratch so a writer
/// encoding many chunks performs no steady-state map allocations.
#[derive(Debug, Default)]
pub struct ColumnEncoder {
    src_dict: DictBuilder,
    tgt_dict: DictBuilder,
}

/// Open a column group frame: write `id` and reserve the `u32 len`
/// header, returning the body-start offset for [`end_group`]. Column
/// bodies are encoded *in place* in `out` — backpatching the length
/// afterwards avoids a scratch-buffer copy per column (the copy is what
/// held `v3_write` to ~60% of the v2 write rate).
#[inline]
fn begin_group(out: &mut Vec<u8>, id: u8) -> usize {
    out.push(id);
    out.extend_from_slice(&[0u8; 4]);
    out.len()
}

/// Backpatch the group length once the body has been written in place.
#[inline]
fn end_group(out: &mut [u8], body_start: usize) {
    let len = (out.len() - body_start) as u32;
    if let Some(header) = out.get_mut(body_start.wrapping_sub(4)..body_start) {
        header.copy_from_slice(&len.to_be_bytes());
    }
}

impl ColumnEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `records` as a v3 columnar payload, appended to `out`.
    pub fn encode(&mut self, records: &[HoRecord], out: &mut Vec<u8>) {
        // Column 0: timestamps — absolute first value, wrapping zigzag
        // deltas after (lossless even when a chunk is unsorted).
        let at = begin_group(out, COL_TIMESTAMP);
        let mut prev = 0u64;
        for (i, r) in records.iter().enumerate() {
            if i == 0 {
                put_varint(out, r.timestamp_ms);
            } else {
                put_varint(out, zigzag(r.timestamp_ms.wrapping_sub(prev) as i64));
            }
            prev = r.timestamp_ms;
        }
        end_group(out, at);

        // Column 1: UE ids, plain varint.
        let at = begin_group(out, COL_UE);
        for r in records {
            put_varint(out, r.ue.0 as u64);
        }
        end_group(out, at);

        // Columns 2–3: sector dictionaries.
        self.src_dict.clear();
        self.tgt_dict.clear();
        for r in records {
            self.src_dict.push(r.source_sector.0);
            self.tgt_dict.push(r.target_sector.0);
        }
        let at = begin_group(out, COL_SRC_SECTOR);
        self.src_dict.emit(out);
        end_group(out, at);
        let at = begin_group(out, COL_TGT_SECTOR);
        self.tgt_dict.emit(out);
        end_group(out, at);

        // Columns 4–5: RATs, 2 bits each.
        let at = begin_group(out, COL_SRC_RAT);
        {
            let mut bits = BitWriter::new(out);
            for r in records {
                bits.push(r.source_rat.index() as u64, 2);
            }
            bits.finish();
        }
        end_group(out, at);
        let at = begin_group(out, COL_TGT_RAT);
        {
            let mut bits = BitWriter::new(out);
            for r in records {
                bits.push(r.target_rat.index() as u64, 2);
            }
            bits.finish();
        }
        end_group(out, at);

        // Column 6: flags, 3 bits (failure | srvcc | cause-present).
        let at = begin_group(out, COL_FLAGS);
        {
            let mut bits = BitWriter::new(out);
            for r in records {
                bits.push(u64::from(row_flags(r)), 3);
            }
            bits.finish();
        }
        end_group(out, at);

        // Column 7: causes — sparse, one varint per flagged record.
        let at = begin_group(out, COL_CAUSE);
        for r in records {
            if let Some(c) = r.cause {
                put_varint(out, c.0 as u64);
            }
        }
        end_group(out, at);

        // Column 8: durations — raw f32 bits; float payloads are
        // high-entropy in the low (mantissa) bits, so varint would grow
        // them.
        let at = begin_group(out, COL_DURATION);
        for r in records {
            out.extend_from_slice(&r.duration_ms.to_bits().to_le_bytes());
        }
        end_group(out, at);

        // Column 9: message counts, plain varint.
        let at = begin_group(out, COL_MESSAGES);
        for r in records {
            put_varint(out, r.messages as u64);
        }
        end_group(out, at);
    }
}

// ---- column batch ----------------------------------------------------------
// telco-lint: deny-panic(begin)
// The batch accessors and the decode path below ingest external bytes
// (CRC-checked, but a checksum collision or writer bug must still
// surface as a typed CodecError, never a panic or an unbounded
// allocation), and the batch scan helpers sit on the sweep hot path.

/// Struct-of-arrays decode target: one reusable `Vec` per [`HoRecord`]
/// column. [`decode_columns`] fills a batch in place (arena reuse across
/// chunks — steady-state decode performs no allocation once the buffers
/// have grown to chunk size), and analysis passes scan the column slices
/// directly instead of materializing rows.
///
/// All columns always hold exactly [`ColumnBatch::len`] values. The
/// `flags` column packs the three record booleans per [`FLAG_FAILURE`] /
/// [`FLAG_SRVCC`] / [`FLAG_CAUSE`]; `causes` is record-aligned with `0`
/// in rows whose cause flag is clear (so scans can index it without an
/// `Option` dance — the flag bit is the presence test).
#[derive(Debug, Default, Clone)]
pub struct ColumnBatch {
    timestamps: Vec<u64>,
    ues: Vec<u32>,
    source_sectors: Vec<u32>,
    target_sectors: Vec<u32>,
    source_rats: Vec<Rat>,
    target_rats: Vec<Rat>,
    flags: Vec<u8>,
    causes: Vec<u16>,
    durations: Vec<f32>,
    messages: Vec<u16>,
}

impl ColumnBatch {
    /// An empty batch (buffers grow on first decode and are reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the batch holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Drop all records, keeping the column buffers allocated.
    pub fn clear(&mut self) {
        self.timestamps.clear();
        self.ues.clear();
        self.source_sectors.clear();
        self.target_sectors.clear();
        self.source_rats.clear();
        self.target_rats.clear();
        self.flags.clear();
        self.causes.clear();
        self.durations.clear();
        self.messages.clear();
    }

    /// Resize every column to `count` default values (decode overwrites
    /// each column in its own pass).
    fn reset(&mut self, count: usize) {
        self.clear();
        self.timestamps.resize(count, 0);
        self.ues.resize(count, 0);
        self.source_sectors.resize(count, 0);
        self.target_sectors.resize(count, 0);
        self.source_rats.resize(count, Rat::G4);
        self.target_rats.resize(count, Rat::G4);
        self.flags.resize(count, 0);
        self.causes.resize(count, 0);
        self.durations.resize(count, 0.0);
        self.messages.resize(count, 0);
    }

    /// `timestamp_ms` column.
    #[inline]
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// `ue` column (raw ids).
    #[inline]
    pub fn ues(&self) -> &[u32] {
        &self.ues
    }

    /// `source_sector` column (raw ids).
    #[inline]
    pub fn source_sectors(&self) -> &[u32] {
        &self.source_sectors
    }

    /// `target_sector` column (raw ids).
    #[inline]
    pub fn target_sectors(&self) -> &[u32] {
        &self.target_sectors
    }

    /// `source_rat` column.
    #[inline]
    pub fn source_rats(&self) -> &[Rat] {
        &self.source_rats
    }

    /// `target_rat` column.
    #[inline]
    pub fn target_rats(&self) -> &[Rat] {
        &self.target_rats
    }

    /// Flag column: [`FLAG_FAILURE`] | [`FLAG_SRVCC`] | [`FLAG_CAUSE`]
    /// per record.
    #[inline]
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// Cause-code column, record-aligned (`0` where the cause flag is
    /// clear).
    #[inline]
    pub fn causes(&self) -> &[u16] {
        &self.causes
    }

    /// `duration_ms` column.
    #[inline]
    pub fn durations(&self) -> &[f32] {
        &self.durations
    }

    /// `messages` column.
    #[inline]
    pub fn messages(&self) -> &[u16] {
        &self.messages
    }

    /// Append one row, transposed into the columns.
    pub fn push_row(&mut self, r: &HoRecord) {
        self.timestamps.push(r.timestamp_ms);
        self.ues.push(r.ue.0);
        self.source_sectors.push(r.source_sector.0);
        self.target_sectors.push(r.target_sector.0);
        self.source_rats.push(r.source_rat);
        self.target_rats.push(r.target_rat);
        self.flags.push(row_flags(r));
        self.causes.push(r.cause.map_or(0, |c| c.0));
        self.durations.push(r.duration_ms);
        self.messages.push(r.messages);
    }

    /// Append a row slice, transposed column by column (one tight loop
    /// per column, so the transpose vectorizes).
    pub fn extend_from_rows(&mut self, rows: &[HoRecord]) {
        self.timestamps.extend(rows.iter().map(|r| r.timestamp_ms));
        self.ues.extend(rows.iter().map(|r| r.ue.0));
        self.source_sectors.extend(rows.iter().map(|r| r.source_sector.0));
        self.target_sectors.extend(rows.iter().map(|r| r.target_sector.0));
        self.source_rats.extend(rows.iter().map(|r| r.source_rat));
        self.target_rats.extend(rows.iter().map(|r| r.target_rat));
        self.flags.extend(rows.iter().map(row_flags));
        self.causes.extend(rows.iter().map(|r| r.cause.map_or(0, |c| c.0)));
        self.durations.extend(rows.iter().map(|r| r.duration_ms));
        self.messages.extend(rows.iter().map(|r| r.messages));
    }

    /// Rebuild row `i`, or `None` past the end.
    pub fn row(&self, i: usize) -> Option<HoRecord> {
        let &flags = self.flags.get(i)?;
        Some(HoRecord {
            timestamp_ms: *self.timestamps.get(i)?,
            ue: UeId(*self.ues.get(i)?),
            source_sector: SectorId(*self.source_sectors.get(i)?),
            target_sector: SectorId(*self.target_sectors.get(i)?),
            source_rat: *self.source_rats.get(i)?,
            target_rat: *self.target_rats.get(i)?,
            outcome: if flags & FLAG_FAILURE != 0 {
                HoOutcome::Failure
            } else {
                HoOutcome::Success
            },
            cause: (flags & FLAG_CAUSE != 0)
                .then(|| CauseCode(self.causes.get(i).copied().unwrap_or(0))),
            duration_ms: *self.durations.get(i)?,
            srvcc: flags & FLAG_SRVCC != 0,
            messages: *self.messages.get(i)?,
        })
    }

    /// Iterate the batch as materialized rows (the fallback path for
    /// passes without a column-scan implementation).
    pub fn rows(&self) -> impl Iterator<Item = HoRecord> + '_ {
        self.timestamps
            .iter()
            .zip(&self.ues)
            .zip(&self.source_sectors)
            .zip(&self.target_sectors)
            .zip(&self.source_rats)
            .zip(&self.target_rats)
            .zip(&self.flags)
            .zip(&self.causes)
            .zip(&self.durations)
            .zip(&self.messages)
            .map(|(((((((((&ts, &ue), &src), &tgt), &sr), &tr), &flags), &cause), &dur), &msgs)| {
                HoRecord {
                    timestamp_ms: ts,
                    ue: UeId(ue),
                    source_sector: SectorId(src),
                    target_sector: SectorId(tgt),
                    source_rat: sr,
                    target_rat: tr,
                    outcome: if flags & FLAG_FAILURE != 0 {
                        HoOutcome::Failure
                    } else {
                        HoOutcome::Success
                    },
                    cause: (flags & FLAG_CAUSE != 0).then_some(CauseCode(cause)),
                    duration_ms: dur,
                    srvcc: flags & FLAG_SRVCC != 0,
                    messages: msgs,
                }
            })
    }

    /// Materialize all rows into `out` (cleared first).
    pub fn fill_rows(&self, out: &mut Vec<HoRecord>) {
        out.clear();
        out.reserve(self.len());
        out.extend(self.rows());
    }
}

// ---- decoder ---------------------------------------------------------------

/// Byte cursor over one column body.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    #[inline]
    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = self.buf.get(self.pos)?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return None; // overflows u64
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

/// Split the next `id | u32 len | body` group off `payload`, verifying
/// the id. Returns the body and the remaining payload.
fn next_group<'a>(
    payload: &'a [u8],
    expect_id: u8,
    name: &'static str,
) -> Result<(&'a [u8], &'a [u8]), CodecError> {
    let (&id, rest) = payload.split_first().ok_or(CodecError::BadField("column_id"))?;
    if id != expect_id {
        return Err(CodecError::BadField("column_id"));
    }
    let (len_bytes, rest) = rest.split_first_chunk::<4>().ok_or(CodecError::BadField(name))?;
    let len = u32::from_be_bytes(*len_bytes) as usize;
    if len > rest.len() {
        return Err(CodecError::BadField(name));
    }
    let (body, remaining) = rest.split_at(len);
    Ok((body, remaining))
}

fn rat_from(code: u64) -> Result<Rat, CodecError> {
    Rat::ALL.get(code as usize).copied().ok_or(CodecError::BadField("rat"))
}

// telco-lint: deny-alloc(begin)
/// Decode a chunk-local dictionary column into per-record values, one
/// `set` call per record (in record order).
fn decode_dict(
    body: &[u8],
    count: usize,
    name: &'static str,
    mut set: impl FnMut(usize, u32),
) -> Result<(), CodecError> {
    let mut bytes = ByteReader::new(body);
    let dict_len = bytes.varint().ok_or(CodecError::BadField(name))? as usize;
    if dict_len > count || (dict_len == 0) != (count == 0) {
        // More entries than records means the dictionary itself is
        // corrupt — and bounding it here keeps a flipped length from
        // driving a giant allocation.
        return Err(CodecError::BadField(name));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let v = bytes.varint().ok_or(CodecError::BadField(name))?;
        // telco-lint: allow(alloc): one bounded dictionary per chunk (≤ count entries), not per record
        dict.push(u32::try_from(v).map_err(|_| CodecError::BadField(name))?);
    }
    let width = index_width(dict_len);
    if width == 0 {
        if !bytes.exhausted() {
            return Err(CodecError::BadField(name));
        }
        let value = dict.first().copied().unwrap_or(0);
        for i in 0..count {
            set(i, value);
        }
        return Ok(());
    }
    let packed = bytes.buf.get(bytes.pos..).unwrap_or(&[]);
    let mut bits = BitReader::new(packed);
    for i in 0..count {
        let idx = bits.pull(width).ok_or(CodecError::BadField(name))? as usize;
        let value = *dict.get(idx).ok_or(CodecError::BadField(name))?;
        set(i, value);
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField(name));
    }
    Ok(())
}

/// Decode a v3 columnar payload of `count` records into the reusable
/// struct-of-arrays buffers of `out` (cleared first; contents are
/// unspecified after an error). Strict: every column must hold exactly
/// `count` values with no trailing garbage, every dictionary index must
/// be in range, every enum code valid — anything else is a typed
/// [`CodecError::BadField`] naming the offending column.
pub fn decode_columns(
    payload: &[u8],
    count: usize,
    out: &mut ColumnBatch,
) -> Result<(), CodecError> {
    out.reset(count);

    // Column 0: timestamps.
    let (body, payload) = next_group(payload, COL_TIMESTAMP, "timestamp")?;
    let mut bytes = ByteReader::new(body);
    let mut prev = 0u64;
    for (i, ts) in out.timestamps.iter_mut().enumerate() {
        let raw = bytes.varint().ok_or(CodecError::BadField("timestamp"))?;
        let v = if i == 0 { raw } else { prev.wrapping_add(unzigzag(raw) as u64) };
        *ts = v;
        prev = v;
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("timestamp"));
    }

    // Column 1: UE ids.
    let (body, payload) = next_group(payload, COL_UE, "ue")?;
    let mut bytes = ByteReader::new(body);
    for ue in out.ues.iter_mut() {
        let v = bytes.varint().ok_or(CodecError::BadField("ue"))?;
        *ue = u32::try_from(v).map_err(|_| CodecError::BadField("ue"))?;
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("ue"));
    }

    // Columns 2–3: sector dictionaries.
    let (body, payload) = next_group(payload, COL_SRC_SECTOR, "source_sector")?;
    {
        let col = &mut out.source_sectors;
        decode_dict(body, count, "source_sector", |i, v| {
            if let Some(s) = col.get_mut(i) {
                *s = v;
            }
        })?;
    }
    let (body, payload) = next_group(payload, COL_TGT_SECTOR, "target_sector")?;
    {
        let col = &mut out.target_sectors;
        decode_dict(body, count, "target_sector", |i, v| {
            if let Some(s) = col.get_mut(i) {
                *s = v;
            }
        })?;
    }

    // Columns 4–5: RATs.
    let (body, payload) = next_group(payload, COL_SRC_RAT, "source_rat")?;
    let mut bits = BitReader::new(body);
    for rat in out.source_rats.iter_mut() {
        *rat = rat_from(bits.pull(2).ok_or(CodecError::BadField("source_rat"))?)?;
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("source_rat"));
    }
    let (body, payload) = next_group(payload, COL_TGT_RAT, "target_rat")?;
    let mut bits = BitReader::new(body);
    for rat in out.target_rats.iter_mut() {
        *rat = rat_from(bits.pull(2).ok_or(CodecError::BadField("target_rat"))?)?;
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("target_rat"));
    }

    // Column 6: flags. Cause presence is noted per record so column 7
    // knows how many entries to expect.
    let (body, payload) = next_group(payload, COL_FLAGS, "flags")?;
    let mut bits = BitReader::new(body);
    let mut causes_expected = 0usize;
    for flags in out.flags.iter_mut() {
        let f = bits.pull(3).ok_or(CodecError::BadField("flags"))? as u8;
        if f & FLAG_CAUSE != 0 {
            causes_expected += 1;
        } else if f & FLAG_FAILURE != 0 {
            // Same invariant the row codec enforces: a failure without
            // a cause code is not a valid record.
            return Err(CodecError::BadField("cause"));
        }
        *flags = f;
    }
    if !bits.leftover_is_clean() {
        return Err(CodecError::BadField("flags"));
    }

    // Column 7: causes — sparse in the payload, record-aligned in the
    // batch (0 where the flag is clear).
    let (body, payload) = next_group(payload, COL_CAUSE, "cause")?;
    let mut bytes = ByteReader::new(body);
    let mut causes_seen = 0usize;
    for (flags, cause) in out.flags.iter().zip(out.causes.iter_mut()) {
        if flags & FLAG_CAUSE != 0 {
            let v = bytes.varint().ok_or(CodecError::BadField("cause"))?;
            *cause = u16::try_from(v).map_err(|_| CodecError::BadField("cause"))?;
            causes_seen += 1;
        }
    }
    if causes_seen != causes_expected || !bytes.exhausted() {
        return Err(CodecError::BadField("cause"));
    }

    // Column 8: durations.
    let (body, payload) = next_group(payload, COL_DURATION, "duration")?;
    let mut bytes = ByteReader::new(body);
    for dur in out.durations.iter_mut() {
        let raw = bytes.take(4).ok_or(CodecError::BadField("duration"))?;
        let mut word = [0u8; 4];
        word.copy_from_slice(raw.get(..4).unwrap_or(&[0; 4]));
        *dur = f32::from_bits(u32::from_le_bytes(word));
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("duration"));
    }

    // Column 9: message counts.
    let (body, payload) = next_group(payload, COL_MESSAGES, "messages")?;
    let mut bytes = ByteReader::new(body);
    for msgs in out.messages.iter_mut() {
        let v = bytes.varint().ok_or(CodecError::BadField("messages"))?;
        *msgs = u16::try_from(v).map_err(|_| CodecError::BadField("messages"))?;
    }
    if !bytes.exhausted() {
        return Err(CodecError::BadField("messages"));
    }

    // Trailing bytes after the last column mean the payload length lies.
    if !payload.is_empty() {
        return Err(CodecError::BadField("column_id"));
    }
    Ok(())
}
// telco-lint: deny-alloc(end)

/// Decode a v3 payload into materialized rows: [`decode_columns`] plus a
/// transpose. Kept for row-oriented consumers and tests; the sweep scans
/// the [`ColumnBatch`] directly.
pub fn decode_rows(
    payload: &[u8],
    count: usize,
    out: &mut Vec<HoRecord>,
) -> Result<(), CodecError> {
    let mut batch = ColumnBatch::new();
    decode_columns(payload, count, &mut batch)?;
    batch.fill_rows(out);
    Ok(())
}

// telco-lint: deny-panic(end)

/// Number of column groups a valid payload carries (exported for tests
/// and diagnostics).
pub const COLUMN_COUNT: usize = COLUMNS;

#[cfg(test)]
mod tests {
    use super::*;
    use telco_signaling::causes::{CauseCode, PrincipalCause};

    fn rec(ts: u64, ue: u32, sector: u32, fail: bool) -> HoRecord {
        HoRecord {
            timestamp_ms: ts,
            ue: UeId(ue),
            source_sector: SectorId(sector),
            target_sector: SectorId(sector + 1),
            source_rat: Rat::G4,
            target_rat: if fail { Rat::G3 } else { Rat::G4 },
            outcome: if fail { HoOutcome::Failure } else { HoOutcome::Success },
            cause: fail.then(|| CauseCode::principal(PrincipalCause::TargetLoadTooHigh)),
            duration_ms: 42.5,
            srvcc: fail,
            messages: 12,
        }
    }

    fn roundtrip(records: &[HoRecord]) -> Vec<HoRecord> {
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(records, &mut payload);
        let mut out = Vec::new();
        decode_rows(&payload, records.len(), &mut out).expect("clean payload decodes");
        out
    }

    #[test]
    fn empty_chunk_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn typical_chunk_roundtrips_and_compresses() {
        let records: Vec<HoRecord> = (0..1000)
            .map(|i| rec(1_000_000 + i * 350, i as u32 % 40, i as u32 % 7, i % 9 == 0))
            .collect();
        assert_eq!(roundtrip(&records), records);
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let row_bytes = records.len() * crate::io::RECORD_BYTES;
        assert!(
            payload.len() * 2 < row_bytes,
            "columnar payload {} not < half of row payload {row_bytes}",
            payload.len()
        );
    }

    #[test]
    fn encoder_reuse_is_byte_identical_to_fresh() {
        // The reusable encoder (dictionary arenas, in-place group
        // bodies) must emit the same bytes on every chunk, including
        // after its scratch has been warmed by unrelated chunks.
        let a: Vec<HoRecord> =
            (0..500).map(|i| rec(i * 13, i as u32 % 9, i as u32 % 30, i % 7 == 0)).collect();
        let b: Vec<HoRecord> =
            (0..321).map(|i| rec(i * 29, i as u32 % 4, i as u32 % 3, i % 5 == 0)).collect();
        let mut reused = ColumnEncoder::new();
        let mut first = Vec::new();
        reused.encode(&a, &mut first);
        let mut warmed = Vec::new();
        reused.encode(&b, &mut warmed);
        reused.encode(&a, &mut warmed);
        let mut fresh_b = Vec::new();
        ColumnEncoder::new().encode(&b, &mut fresh_b);
        fresh_b.extend_from_slice(&first);
        assert_eq!(warmed, fresh_b, "warm encoder drifted from a fresh one");
    }

    #[test]
    fn batch_rows_match_source_rows() {
        // Transpose in (extend_from_rows) and out (rows / row / fill_rows)
        // must be lossless in both directions.
        let records: Vec<HoRecord> =
            (0..777).map(|i| rec(i * 31, i as u32 % 13, i as u32 % 11, i % 6 == 0)).collect();
        let mut batch = ColumnBatch::new();
        batch.extend_from_rows(&records);
        assert_eq!(batch.len(), records.len());
        let back: Vec<HoRecord> = batch.rows().collect();
        assert_eq!(back, records);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(batch.row(i).as_ref(), Some(r));
        }
        assert_eq!(batch.row(records.len()), None);
        let mut filled = Vec::new();
        batch.fill_rows(&mut filled);
        assert_eq!(filled, records);
    }

    #[test]
    fn batch_reuse_across_chunks() {
        // A batch decoded into repeatedly must hold exactly the latest
        // chunk, with no leakage from a previous (larger) one.
        let big: Vec<HoRecord> =
            (0..300).map(|i| rec(i * 7, i as u32, i as u32 % 8, i % 3 == 0)).collect();
        let small: Vec<HoRecord> = (0..5).map(|i| rec(i, i as u32, 2, false)).collect();
        let mut enc = ColumnEncoder::new();
        let mut batch = ColumnBatch::new();
        for chunk in [&big[..], &small[..], &big[..]] {
            let mut payload = Vec::new();
            enc.encode(chunk, &mut payload);
            decode_columns(&payload, chunk.len(), &mut batch).expect("clean payload decodes");
            assert_eq!(batch.rows().collect::<Vec<_>>(), chunk);
        }
    }

    #[test]
    fn timestamp_regressions_roundtrip() {
        // Unsorted timestamps, including u64 extremes: the wrapping
        // zigzag deltas must be lossless.
        let ts = [5u64, 3, 10, u64::MAX, 0, u64::MAX / 2, 7];
        let records: Vec<HoRecord> =
            ts.iter().enumerate().map(|(i, &t)| rec(t, i as u32, 1, false)).collect();
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn single_sector_chunk_uses_zero_width_indexes() {
        // All records share one sector pair → dictionary of 1, no index
        // bits at all.
        let records: Vec<HoRecord> = (0..64).map(|i| rec(i * 10, i as u32, 9, false)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        assert_eq!(roundtrip(&records), records);
        // Row encoding of the two sector columns alone: 8 bytes/record.
        assert!(payload.len() < records.len() * 20);
    }

    #[test]
    fn truncated_column_reports_its_name() {
        let records: Vec<HoRecord> = (0..10).map(|i| rec(i, i as u32, i as u32, false)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let mut out = ColumnBatch::new();
        // Cutting anywhere must produce a typed error, never a panic.
        for cut in 0..payload.len() {
            let err = decode_columns(&payload[..cut], records.len(), &mut out)
                .expect_err("truncated payload must not decode");
            assert!(matches!(err, CodecError::BadField(_)), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let records: Vec<HoRecord> =
            (0..50).map(|i| rec(i * 97, i as u32, i as u32 % 5, i % 4 == 0)).collect();
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        let mut out = ColumnBatch::new();
        for pos in 0..payload.len() {
            for bit in 0..8 {
                let mut bad = payload.clone();
                bad[pos] ^= 1 << bit;
                // May decode to different records (CRC catches this a
                // layer up) or error — the property is no panic and no
                // giant allocation.
                let _ = decode_columns(&bad, records.len(), &mut out);
            }
        }
    }

    #[test]
    fn dictionary_overflow_rejected() {
        // A dictionary claiming more entries than the chunk has records
        // is corrupt by construction and must not allocate.
        let records = vec![rec(1, 1, 1, false)];
        let mut payload = Vec::new();
        ColumnEncoder::new().encode(&records, &mut payload);
        // Column 2 starts after columns 0 and 1; find it by scanning
        // group frames.
        let mut pos = 0usize;
        for _ in 0..2 {
            let len = u32::from_be_bytes([
                payload[pos + 1],
                payload[pos + 2],
                payload[pos + 3],
                payload[pos + 4],
            ]);
            pos += 5 + len as usize;
        }
        assert_eq!(payload[pos], COL_SRC_SECTOR);
        // First body byte is the dict_len varint (1) — forge a huge one.
        payload[pos + 5] = 0xFF;
        payload.insert(pos + 6, 0xFF);
        payload.insert(pos + 7, 0x7F);
        let mut out = ColumnBatch::new();
        let err = decode_columns(&payload, 1, &mut out).unwrap_err();
        assert_eq!(err, CodecError::BadField("source_sector"));
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut bytes = ByteReader::new(&[0xFF; 11]);
        assert_eq!(bytes.varint(), None);
        // Exactly 10 bytes with a high final byte overflows u64 too.
        let mut bytes =
            ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
        assert_eq!(bytes.varint(), None);
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
