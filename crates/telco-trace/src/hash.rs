//! A deterministic, multiplication-based hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a random
//! per-process key: cryptographically collision-resistant, but ~2ns per
//! small key and — because of the random seed — useless anywhere the
//! deny-nondeterminism invariant applies. The codec's dictionary builder
//! and the sweep's frame accumulator hash one integer key per record at
//! multi-million-records/second rates, where SipHash is the profile's
//! top entry; both need a fixed-seed hasher anyway so that any future
//! iteration-order dependence is at least reproducible.
//!
//! [`FxHasher`] is the classic Firefox hash: fold each machine word into
//! the state with a rotate, xor, and one multiply by a mixing constant.
//! One multiply per `u64` key, fully deterministic, good-enough
//! avalanche for table indexing. It is *not* DoS-resistant — only use it
//! for keys the process itself generates (sector ids, packed
//! sector/window keys), never for attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit mixing constant (2^64 / φ, forced odd) — the standard
/// multiplicative-hashing choice: high-entropy bits and an odd value so
/// multiplication is a bijection on u64.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiplicative hasher with a fixed seed. See the
/// module docs for when (not) to use it.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiplication only propagates entropy upward: the low k bits
        // of `x * SEED` depend on nothing above bit k of `x`. Hash-table
        // bucket indexes come from the LOW bits of this value, so without
        // a downward fold, keys differing only in their high half (e.g. a
        // `sector << 32 | window` packed key) would collide into a
        // handful of chains. One xor-fold pulls the well-mixed top half
        // into the index bits.
        self.state ^ (self.state >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            // Tail shorter than 8 bytes; the copy can't overrun `word`.
            word[..rest.len().min(8)].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`] — deterministic and one multiply per
/// integer key. Lookup-only or sorted-before-iteration uses satisfy the
/// deny-nondeterminism invariant trivially; raw iteration order, while
/// stable for a fixed key set, is still arbitrary — sort before emitting.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` over [`FxHasher`], same caveats as [`FxHashMap`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one(value: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        // SipHash would fail this across processes; FxHasher must not
        // even vary across hasher instances.
        assert_eq!(hash_one(0xdead_beefu64), hash_one(0xdead_beefu64));
        assert_eq!(hash_one("sector-17"), hash_one("sector-17"));
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential sector ids are the common key pattern; they must
        // not land in adjacent buckets of a power-of-two table.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let mut low_bits: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 100, "top bits collapse on sequential keys");
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "full-width collision on sequential keys");
    }

    #[test]
    fn high_half_reaches_the_low_index_bits() {
        // The frame accumulator packs `sector << 32 | window`: entropy
        // lives in the high half while bucket indexes come from the low
        // bits. Sequential high-half keys must spread across low bits —
        // the multiply-only hash failed exactly this, collapsing the
        // sector-day map into per-window collision chains.
        let low: FxHashSet<u64> = (0u64..1000).map(|s| hash_one(s << 32) & 0x3FF).collect();
        assert!(low.len() > 500, "high-half keys collapse onto {} low-bit buckets", low.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([0u8; 9]), hash_one([0u8; 17]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i.wrapping_mul(0x1234_5677) | 1, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i.wrapping_mul(0x1234_5677) | 1)), Some(&(i as u32)));
        }
    }
}
