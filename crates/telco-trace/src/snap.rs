//! Versioned snapshot codec for analysis-pass state.
//!
//! Analysis passes checkpoint their accumulator state through this codec
//! so an ingest service can persist a baseline, restore it after a crash,
//! and keep folding per-day deltas into it (see `telco-serve`). The
//! encoding is deliberately boring: little-endian fixed-width integers,
//! LEB128 varints for counters and lengths, IEEE-754 bit patterns for
//! floats — and **deterministic**: encoders must never iterate a
//! hash-ordered collection directly (sort first), so the same logical
//! state always produces the same bytes and snapshot equality is byte
//! equality.
//!
//! A complete snapshot is a *frame*:
//!
//! ```text
//! magic "TLSN" | version u16 LE | payload len u32 LE | payload | crc32 LE
//! ```
//!
//! The CRC covers the version and the payload, so a torn or bit-flipped
//! snapshot (or one written by a different pass version) is rejected at
//! decode time instead of silently restoring garbage. Version bumps are
//! per pass: a pass that changes its encoding bumps its
//! `SNAPSHOT_VERSION` and old snapshots fail loudly with
//! [`SnapError::BadVersion`].

use crate::crc32::crc32;

/// Magic prefix of a snapshot frame.
pub const SNAP_MAGIC: [u8; 4] = *b"TLSN";

/// Errors decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the decoder was done.
    Truncated,
    /// The frame does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The frame was written by a different snapshot version.
    BadVersion {
        /// The version the decoder understands.
        expected: u16,
        /// The version found in the frame.
        found: u16,
    },
    /// The frame's CRC-32 does not match its contents.
    BadCrc,
    /// The payload decoded cleanly but left unconsumed bytes.
    TrailingBytes(usize),
    /// A field held a value the decoder cannot represent.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot frame (bad magic)"),
            SnapError::BadVersion { expected, found } => {
                write!(f, "snapshot version {found} (expected {expected})")
            }
            SnapError::BadCrc => write!(f, "snapshot CRC mismatch"),
            SnapError::TrailingBytes(n) => write!(f, "{n} unconsumed snapshot bytes"),
            SnapError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a fixed-width little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a fixed-width little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a fixed-width little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an LEB128 varint (7 bits per byte, low first).
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Append an `f32` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed vector of varint counters.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_varint(vs.len() as u64);
        for &v in vs {
            self.put_varint(v);
        }
    }

    /// Append a length-prefixed vector of `f64` bit patterns.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_varint(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed vector of `f32` bit patterns.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_varint(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }
}

/// Cursor-style decoder over a snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        SnapReader { buf: payload, pos: 0 }
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(SnapError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool byte (anything nonzero is `true` is rejected: only 0/1).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload, or
    /// [`SnapError::Malformed`] for a byte other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte")),
        }
    }

    /// Read a fixed-width little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a fixed-width little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read an LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload, or
    /// [`SnapError::Malformed`] for a varint longer than a `u64`.
    pub fn get_varint(&mut self) -> Result<u64, SnapError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SnapError::Malformed("varint overflow"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a varint and narrow it to a `usize` length.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::get_varint`], plus [`SnapError::Malformed`] when
    /// the value does not fit a `usize`.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_varint()?).map_err(|_| SnapError::Malformed("length overflow"))
    }

    /// Read an `f32` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the prefix outruns the payload.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Read a length-prefixed vector of varint counters.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::get_varint`].
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            out.push(self.get_varint()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed vector of `f64` bit patterns.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the prefix outruns the payload.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed vector of `f32` bit patterns.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the prefix outruns the payload.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, SnapError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }
}

/// Wrap a raw payload in a versioned, CRC-protected snapshot frame.
pub fn encode_frame(version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 14);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(payload.len() + 2);
    crc_input.extend_from_slice(&version.to_le_bytes());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out
}

/// Validate a snapshot frame and return its payload.
///
/// # Errors
///
/// [`SnapError::BadMagic`]/[`SnapError::Truncated`] for frames that are
/// not snapshots, [`SnapError::BadVersion`] for a version other than
/// `expected_version`, [`SnapError::BadCrc`] for corrupted contents, and
/// [`SnapError::TrailingBytes`] when bytes follow the frame.
pub fn decode_frame(expected_version: u16, bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < 14 {
        return Err(if bytes.starts_with(&SNAP_MAGIC) || bytes.len() < 4 {
            SnapError::Truncated
        } else {
            SnapError::BadMagic
        });
    }
    if bytes[..4] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let found = u16::from_le_bytes([bytes[4], bytes[5]]);
    let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    let end = 10usize.checked_add(len).ok_or(SnapError::Truncated)?;
    let payload = bytes.get(10..end).ok_or(SnapError::Truncated)?;
    let crc_bytes = bytes.get(end..end + 4).ok_or(SnapError::Truncated)?;
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let mut crc_input = Vec::with_capacity(payload.len() + 2);
    crc_input.extend_from_slice(&bytes[4..6]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != stored {
        return Err(SnapError::BadCrc);
    }
    // Version is checked after the CRC so corruption of the version
    // field reads as corruption, not as a clean version mismatch.
    if found != expected_version {
        return Err(SnapError::BadVersion { expected: expected_version, found });
    }
    if bytes.len() > end + 4 {
        return Err(SnapError::TrailingBytes(bytes.len() - end - 4));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65_535);
        w.put_u32(123_456_789);
        w.put_u64(u64::MAX);
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(u64::MAX);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_bytes(b"abc");
        w.put_u64s(&[1, 2, 300]);
        w.put_f64s(&[1.5, -2.25]);
        w.put_f32s(&[3.75]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 65_535);
        assert_eq!(r.get_u32().unwrap(), 123_456_789);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_varint().unwrap(), 0);
        assert_eq!(r.get_varint().unwrap(), 127);
        assert_eq!(r.get_varint().unwrap(), 128);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_u64s().unwrap(), vec![1, 2, 300]);
        assert_eq!(r.get_f64s().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.get_f32s().unwrap(), vec![3.75]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(1)));
    }

    #[test]
    fn frame_round_trips() {
        let framed = encode_frame(3, b"payload");
        assert_eq!(decode_frame(3, &framed).unwrap(), b"payload");
    }

    #[test]
    fn frame_rejects_wrong_version() {
        let framed = encode_frame(3, b"payload");
        assert_eq!(decode_frame(4, &framed), Err(SnapError::BadVersion { expected: 4, found: 3 }));
    }

    #[test]
    fn frame_rejects_corruption() {
        let mut framed = encode_frame(1, b"some payload bytes");
        framed[12] ^= 0x01;
        assert_eq!(decode_frame(1, &framed), Err(SnapError::BadCrc));
        let framed = encode_frame(1, b"x");
        assert_eq!(decode_frame(1, &framed[..framed.len() - 1]), Err(SnapError::Truncated));
        assert_eq!(decode_frame(1, b"NOPE000000000000"), Err(SnapError::BadMagic));
    }

    #[test]
    fn version_corruption_reads_as_crc_failure() {
        let mut framed = encode_frame(1, b"payload");
        framed[4] ^= 0xff; // flip the version field
        assert_eq!(decode_frame(1, &framed), Err(SnapError::BadCrc));
    }

    #[test]
    fn empty_payload_frames() {
        let framed = encode_frame(9, b"");
        assert_eq!(decode_frame(9, &framed).unwrap(), b"");
    }
}
