//! Quickstart: simulate a small country for a week and print the study's
//! headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use telco_lens::prelude::*;

fn main() {
    // A statistically meaningful but fast configuration: ~3k UEs, 7 days.
    let config = SimConfig::small();
    println!(
        "Simulating {} UEs for {} days over {} districts...",
        config.n_ues, config.n_days, config.country.n_districts
    );
    let t0 = std::time::Instant::now();
    let study = Study::run(config);
    println!("done in {:?}\n", t0.elapsed());

    // Table 1: what the dataset looks like.
    println!("{}", study.dataset_stats().table());

    // Table 2: who hands over where.
    let table2 = study.ho_types();
    println!("{}", table2.table());
    println!(
        "Horizontal handovers: {:.1}% of all (the paper reports 94.14%)\n",
        100.0 * table2.intra_share()
    );

    // Fig. 8: how long handovers take.
    let durations = study.durations();
    println!("{}", durations.table());
    println!(
        "Median intra-4G/5G handover: {:.0} ms (the paper reports 43 ms)",
        durations.intra.median()
    );

    // Fig. 14a: why handovers fail.
    let causes = study.causes();
    println!("\n{}", causes.table_shares());
    println!(
        "The 8 principal causes explain {:.0}% of failures (paper: 92%); \
         {:.0}% of failures hit handovers to 3G (paper: 75%).",
        100.0 * causes.principal_share(),
        100.0 * causes.to3g_failure_share
    );
}
