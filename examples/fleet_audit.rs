//! Fleet audit: the manufacturer-impact analysis of the paper's Fig. 11,
//! run as an operator would — to flag device fleets whose mobility
//! management misbehaves relative to their district peers.
//!
//! ```text
//! cargo run --release --example fleet_audit
//! ```

use telco_lens::prelude::*;

fn main() {
    let mut config = SimConfig::small();
    config.n_ues = 6_000; // enough devices per district-manufacturer pair
    println!("Auditing a {}-device fleet...", config.n_ues);
    let study = Study::run(config);
    let impact = study.manufacturer_impact();

    println!("\n{}", impact.table());

    // Flag anomalous fleets the way the paper does: normalized ratios far
    // from 1 mean the manufacturer's devices behave unlike their district
    // peers of the same device type.
    println!("\nAudit findings:");
    let mut findings = 0;
    for mfr in Manufacturer::ALL {
        let ho = impact.median_ho_ratio(mfr);
        let hof = impact.median_hof_ratio(mfr);
        if let Some(hof) = hof {
            if hof > 2.0 {
                findings += 1;
                println!(
                    "  ⚠ {mfr}: {:.0}% higher HOF rate than district peers \
                     (paper flags KVD/HMD at up to +600%)",
                    100.0 * (hof - 1.0)
                );
            } else if hof < 0.8 {
                findings += 1;
                println!(
                    "  ✓ {mfr}: {:.0}% lower HOF rate than district peers \
                     (paper: Google at −27%)",
                    100.0 * (1.0 - hof)
                );
            }
        }
        if let Some(ho) = ho {
            if ho > 2.0 {
                findings += 1;
                println!(
                    "  ⚠ {mfr}: {:.1}× the handover signaling of district \
                     peers (paper: Simcom at +293%)",
                    ho
                );
            }
        }
    }
    if findings == 0 {
        println!("  (no anomalies at this scale — increase n_ues)");
    }

    // The top-5 sanity check from §5.3: popular brands behave alike.
    println!("\nTop-5 smartphone brands (should all sit near 1.0):");
    for mfr in Manufacturer::TOP5_SMARTPHONE {
        if let Some(r) = impact.median_ho_ratio(mfr) {
            println!("  {mfr:<10} normalized HOs/UE: {r:.2}");
        }
    }
}
