//! Rush hour: the diurnal anatomy of handovers and handover failures in
//! urban vs rural areas (the paper's Figs. 7 and 12).
//!
//! Prints an ASCII weekly heat-line of normalized HO volume, then the
//! hourly urban/rural HOF comparison around the morning commute.
//!
//! ```text
//! cargo run --release --example rush_hour
//! ```

use telco_lens::prelude::*;
use telco_mobility::schedule::DayOfWeek;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    values.iter().map(|v| BARS[((v / max) * 7.0).round() as usize]).collect()
}

fn main() {
    let mut config = SimConfig::small();
    config.n_days = 14; // two full weeks for stable weekday/weekend shapes
    println!("Simulating two weeks of rush hours...");
    let study = Study::run(config);

    let temporal = study.temporal_evolution();
    println!("\nNormalized HO volume per 30-minute slot (urban):");
    for day in DayOfWeek::ALL {
        let slots: Vec<f64> = (0..48).map(|s| temporal.hos_urban.at(day, s)).collect();
        println!("  {} {}", day, sparkline(&slots));
    }
    println!("\nNormalized HO volume per 30-minute slot (rural):");
    for day in DayOfWeek::ALL {
        let slots: Vec<f64> = (0..48).map(|s| temporal.hos_rural.at(day, s)).collect();
        println!("  {} {}", day, sparkline(&slots));
    }

    println!("\n{}", temporal.table());
    println!(
        "Urban areas carry {:.0}% of handovers (paper: 78%); the 6:00→8:00 \
         surge is ×{:.1} (paper: ×3); Sunday peaks {:.0}% below Friday \
         (paper: 33%).",
        100.0 * temporal.urban_ho_share,
        temporal.morning_surge,
        100.0 * temporal.sunday_vs_friday_drop,
    );

    // Fig. 12: failures around the commute.
    let hof = study.hof_patterns();
    println!("\n{}", hof.table());
    if hof.rural_morning_excess.is_finite() {
        println!(
            "Rural sectors see {:.0}% more normalized HOFs than urban ones \
             during [7:00-8:00) (paper: +32.4%).",
            100.0 * hof.rural_morning_excess
        );
    }
}
