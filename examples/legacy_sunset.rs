//! Legacy sunset: a what-if experiment the paper's Discussion (§8) calls
//! for — what happens to handover reliability if the operator pushes UEs
//! harder onto (or off) the legacy RATs?
//!
//! We run the same country three times: the baseline deployment, a
//! "3G-reliant" scenario where coverage gaps double the vertical-fallback
//! pressure, and a "sunset" scenario where 4G/5G coverage improvements cut
//! fallbacks by 4×. The output shows how the vertical-handover share and
//! the HOF rate respond — quantifying why decommissioning must be paired
//! with coverage investment.
//!
//! ```text
//! cargo run --release --example legacy_sunset
//! ```

use telco_lens::prelude::*;

struct Scenario {
    name: &'static str,
    fallback_multiplier: f64,
}

fn main() {
    let scenarios = [
        Scenario { name: "3G-reliant (gaps ×2)", fallback_multiplier: 2.0 },
        Scenario { name: "baseline", fallback_multiplier: 1.0 },
        Scenario { name: "sunset-ready (gaps ÷4)", fallback_multiplier: 0.25 },
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>14}",
        "scenario", "vertical%", "HOF rate%", "HOFs on 3G%", "median dur ms"
    );
    for scenario in &scenarios {
        let mut config = SimConfig::small();
        config.coverage.urban_base *= scenario.fallback_multiplier;
        config.coverage.rural_base *= scenario.fallback_multiplier;
        let study = Study::run(config);
        let dataset = &study.data().output.dataset;

        let counts = dataset.counts_by_type();
        let total: u64 = counts.iter().sum();
        let vertical = (counts[1] + counts[2]) as f64 / total.max(1) as f64;

        let mut fails_3g = 0u64;
        let mut fails = 0u64;
        for r in dataset.failures() {
            fails += 1;
            if r.ho_type() == HoType::To3g {
                fails_3g += 1;
            }
        }
        // Median duration over all successful handovers: vertical HOs are
        // an order of magnitude slower, so the mix shift is visible here.
        let mut durations: Vec<f64> = dataset
            .records()
            .iter()
            .filter(|r| !r.is_failure())
            .map(|r| r.duration_ms as f64)
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = durations[durations.len() / 2];

        println!(
            "{:<24} {:>10.2} {:>10.3} {:>12.1} {:>14.0}",
            scenario.name,
            100.0 * vertical,
            100.0 * dataset.hof_rate(),
            100.0 * fails_3g as f64 / fails.max(1) as f64,
            median,
        );
    }
    println!(
        "\nReading: every point of vertical-handover share bought back by \
         better 4G/5G coverage removes the failure-prone (×166% HOF, per \
         the paper's Table 4) and slow (×10 duration) legacy path."
    );
}
