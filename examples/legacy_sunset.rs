//! Legacy sunset: a what-if experiment the paper's Discussion (§8) calls
//! for — what happens to handover reliability if the operator pushes UEs
//! harder onto (or off) the legacy RATs?
//!
//! We run the same country three times: the baseline deployment, a
//! "3G-reliant" scenario where coverage gaps double the vertical-fallback
//! pressure, and a "sunset" scenario where 4G/5G coverage improvements cut
//! fallbacks by 4×. The output shows how the vertical-handover share and
//! the HOF rate respond — quantifying why decommissioning must be paired
//! with coverage investment.
//!
//! ```text
//! cargo run --release --example legacy_sunset
//! ```

use telco_lens::analytics::{AnalysisPass, Enriched, Sweep, SweepCtx};
use telco_lens::prelude::*;
use telco_lens::trace::record::HoRecord;
use telco_lens::trace::snap::{SnapError, SnapReader, SnapWriter};

struct Scenario {
    name: &'static str,
    fallback_multiplier: f64,
}

/// A custom streaming pass: successful-handover durations, accumulated in
/// one traversal (works identically over in-memory or spilled traces).
#[derive(Default)]
struct SuccessDurations {
    durations: Vec<f64>,
}

impl AnalysisPass for SuccessDurations {
    type Output = Vec<f64>;

    fn record(&mut self, r: &HoRecord, _e: &Enriched) {
        if !r.is_failure() {
            self.durations.push(r.duration_ms as f64);
        }
    }

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        self.durations.extend(other.durations);
    }

    fn end(self, _ctx: &SweepCtx) -> Vec<f64> {
        self.durations
    }

    // Every pass is checkpointable, custom ones included: the sample
    // vector round-trips through the snapshot codec byte-exactly.
    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_f64s(&self.durations);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.durations = r.get_f64s()?;
        Ok(())
    }
}

fn main() {
    let scenarios = [
        Scenario { name: "3G-reliant (gaps ×2)", fallback_multiplier: 2.0 },
        Scenario { name: "baseline", fallback_multiplier: 1.0 },
        Scenario { name: "sunset-ready (gaps ÷4)", fallback_multiplier: 0.25 },
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>14}",
        "scenario", "vertical%", "HOF rate%", "HOFs on 3G%", "median dur ms"
    );
    for scenario in &scenarios {
        let mut config = SimConfig::small();
        config.coverage.urban_base *= scenario.fallback_multiplier;
        config.coverage.rural_base *= scenario.fallback_multiplier;
        let study = Study::run(config);

        let counts = study.trace_counts();
        let total: u64 = counts.by_type.iter().sum();
        let vertical = (counts.by_type[1] + counts.by_type[2]) as f64 / total.max(1) as f64;

        // Median duration over all successful handovers: vertical HOs are
        // an order of magnitude slower, so the mix shift is visible here.
        // This isn't a stock analysis, so run it as a custom pass.
        let mut durations = Sweep::new(study.data()).run(SuccessDurations::default).expect("sweep");
        durations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = durations[durations.len() / 2];

        println!(
            "{:<24} {:>10.2} {:>10.3} {:>12.1} {:>14.0}",
            scenario.name,
            100.0 * vertical,
            100.0 * counts.hof_rate(),
            100.0 * study.causes().to3g_failure_share,
            median,
        );
    }
    println!(
        "\nReading: every point of vertical-handover share bought back by \
         better 4G/5G coverage removes the failure-prone (×166% HOF, per \
         the paper's Table 4) and slow (×10 duration) legacy path."
    );
}
