//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`Just`], `prop_oneof!`,
//! `proptest::bool::ANY`, `proptest::option::of`, `proptest::collection::vec`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Cases are generated from a deterministic per-case RNG; there is no
//! shrinking — a failing case reports its inputs via the assertion message.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the `case`-th iteration of a property.
    pub fn for_case(case: u32) -> Self {
        TestRng(0x7465_6c63_6f5f_7074 ^ ((case as u64) << 1))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failing property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Box a strategy for use in heterogeneous lists (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The boolean "any value" strategy, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __l,
                __r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strategy,)*);
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__case);
                let ($($pat,)*) = $crate::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -2.0f64..2.0, z in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u16..100, 1..20),
            o in crate::option::of(5u32..6),
            b in crate::bool::ANY,
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
            if let Some(x) = o {
                prop_assert_eq!(x, 5);
            }
            let _ = b;
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, crate::bool::ANY);
        let a: Vec<_> =
            (0..10).map(|c| Strategy::generate(&s, &mut crate::TestRng::for_case(c))).collect();
        let b: Vec<_> =
            (0..10).map(|c| Strategy::generate(&s, &mut crate::TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
