//! Offline stand-in for `crossbeam`: just the scoped-thread API this
//! workspace uses, implemented over [`std::thread::scope`] (stable since
//! Rust 1.63, which is why the shim can be this thin).

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to [`scope`]'s closure; spawn borrows through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again (crossbeam's signature) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { handle: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        handle: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result, or the
        /// panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.handle.join()
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. Returns `Err` with the panic payload if the closure panics
    /// (panics in spawned threads surface through their `join` results,
    /// or abort the scope on implicit join, matching crossbeam).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn closure_panic_is_caught() {
        let r = crate::thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
