//! Offline stand-in for `rand_chacha`: a real ChaCha8 block cipher in
//! counter mode, exposed through the vendored [`rand`] traits.
//!
//! The keystream is a faithful ChaCha8 (RFC 8439 block function with 8
//! rounds); only the [`rand::SeedableRng::seed_from_u64`] seed expansion
//! differs from upstream, so streams are deterministic but not
//! bit-compatible with the real `rand_chacha` crate.

use rand::{Rng, SeedableRng};

/// ChaCha with 8 rounds: fast, statistically strong, deterministic.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: a column round plus a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_idx = 0;
    }
}

impl Rng for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let word = self.block[self.word_idx];
        self.word_idx += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (words 12–13) and nonce (words 14–15) start at zero.
        ChaCha8Rng { state, block: [0; 16], word_idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} collisions in 64 words");
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
