//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.10 API it actually uses: the
//! object-safe [`Rng`] core trait, the [`RngExt`] extension methods
//! (`random`, `random_range`, `random_bool`), and [`SeedableRng`].
//!
//! The numeric streams are *not* bit-compatible with upstream rand; the
//! workspace only requires determinism (same seed → same stream), which
//! this implementation provides.

/// Core random source: object-safe, implemented by concrete generators.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (matching the
    /// approach of upstream rand, though not its exact output).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types sampleable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full domain for integers and `bool`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $src:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$src() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A value uniform over the type's standard domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl Rng for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_honour_bounds() {
        let mut rng = Lcg(11);
        for _ in 0..1000 {
            let v = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.random_range(-2.0..1.5);
            assert!((-2.0..1.5).contains(&f));
            let i = rng.random_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(13);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
