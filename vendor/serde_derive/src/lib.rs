//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this derive is written
//! directly against `proc_macro` (no `syn`/`quote`): it parses the item's
//! token stream by hand and emits the impl as a formatted source string.
//!
//! Supported shapes — the ones this workspace actually derives on:
//! named-field structs (with `#[serde(skip)]`), tuple structs, unit structs,
//! and enums with unit / named-field / tuple variants. Generic items are not
//! supported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consume attributes at `*i`, returning whether any was `#[serde(skip)]`.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    skip |= attr_is_serde_skip(&g.stream());
                    *i += 1;
                }
            }
            _ => break,
        }
    }
    skip
}

fn attr_is_serde_skip(attr: &TokenStream) -> bool {
    let mut it = attr.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Advance past one "type-ish" run: everything up to a comma that sits
/// outside `<...>` nesting. `->` and standalone `>`s at depth 0 are ignored.
fn skip_until_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let skip = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i);
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected ':' after field `{name}`, found {other:?}"),
        }
        skip_until_top_level_comma(&toks, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break; // trailing comma
        }
        skip_until_top_level_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i);
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                // Explicit discriminant: consume the expression.
                i += 1;
                skip_until_top_level_comma(&toks, &mut i);
                variants.push(Variant { name, shape });
                continue;
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = ident_at(&toks, i);
    i += 1;
    let name = ident_at(&toks, i);
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stand-in: generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde derive: unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    }
}

fn ser_named_fields(path: &str, fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({a})));",
            n = f.name,
            a = access(&f.name),
        ));
    }
    format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::with_capacity({cap}); {pushes} ::serde::Value::Object(__fields) }}",
        cap = fields.iter().filter(|f| !f.skip).count(),
    )
    .replace("__PATH__", path) // path unused today; kept for symmetry
}

/// `#[derive(Serialize)]` — emits `impl ::serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => ser_named_fields(name, fields, |f| format!("&self.{f}")),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name,
                    )),
                    Shape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named_fields(name, fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),",
                            v = v.name,
                            binds = binds.join(","),
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),",
                            v = v.name,
                            binds = binds.join(","),
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl failed to parse")
}

fn de_named_fields(ty: &str, ctor: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{n}: ::core::default::Default::default(),", n = f.name));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::get_field(__obj, \"{n}\")\
                 .ok_or_else(|| ::serde::DeError::missing_field(\"{n}\", \"{ty}\"))?)?,",
                n = f.name,
            ));
        }
    }
    format!(
        "{{ let __obj = __v.as_object()\
         .ok_or_else(|| ::serde::DeError::expected(\"object\", \"{ty}\"))?; \
         ::std::result::Result::Ok({ctor} {{ {inits} }}) }}"
    )
}

fn de_tuple(ty: &str, ctor: &str, n: usize) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value(__v)?))"
        );
    }
    let items: Vec<String> =
        (0..n).map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?")).collect();
    format!(
        "{{ let __arr = __v.as_array()\
         .ok_or_else(|| ::serde::DeError::expected(\"array\", \"{ty}\"))?; \
         if __arr.len() != {n} {{ \
         return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", \"{ty}\")); }} \
         ::std::result::Result::Ok({ctor}({items})) }}",
        items = items.join(","),
    )
}

/// `#[derive(Deserialize)]` — emits `impl ::serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => de_named_fields(name, name, fields),
                Shape::Tuple(n) => de_tuple(name, name, *n),
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name,
                    )),
                    Shape::Named(fields) => {
                        let inner = de_named_fields(name, &format!("{name}::{}", v.name), fields)
                            .replace("__v.as_object()", "__inner.as_object()");
                        data_arms.push_str(&format!("\"{v}\" => {inner},", v = v.name));
                    }
                    Shape::Tuple(n) => {
                        let inner = de_tuple(name, &format!("{name}::{}", v.name), *n)
                            .replace("__v)", "__inner)")
                            .replace("__v.as_array()", "__inner.as_array()");
                        data_arms.push_str(&format!("\"{v}\" => {inner},", v = v.name));
                    }
                }
            }
            let body = format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                   __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, \"{name}\")), }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                   let (__tag, __inner) = &__pairs[0]; \
                   match __tag.as_str() {{ {data_arms} \
                     __other => ::std::result::Result::Err(\
                       ::serde::DeError::unknown_variant(__other, \"{name}\")), }} }}, \
                 _ => ::std::result::Result::Err(\
                   ::serde::DeError::expected(\"enum value\", \"{name}\")), }}"
            );
            (name.clone(), body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }} }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl failed to parse")
}
