//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's serializer/deserializer visitor machinery,
//! this models serialization as conversion to and from a [`Value`] tree:
//! [`Serialize::to_value`] and [`Deserialize::from_value`]. The `serde_json`
//! stand-in prints and parses that tree. The `Serialize`/`Deserialize`
//! derive macros (re-exported from `serde_derive`) target these traits.

// Lets the derive macros' generated `::serde::` paths resolve inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// A self-describing serialized value.
///
/// `F32` is kept distinct from `F64` so the JSON printer can use the
/// shortest representation that round-trips at `f32` precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Double-precision float.
    F64(f64),
    /// Single-precision float.
    F32(f32),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as an array's elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::F32(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Integer coercion to `u64` (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Integer coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Borrow as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Look up a field in an object's pair list (linear scan; objects here are
/// struct-sized).
pub fn get_field<'a>(pairs: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Type mismatch while deserializing `ty`.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError { msg: format!("expected {what} while deserializing {ty}") }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError { msg: format!("missing field `{field}` in {ty}") }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError { msg: format!("unknown variant `{variant}` for {ty}") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F32(x) => Ok(x),
            _ => v.as_f64().map(|x| x as f32).ok_or_else(|| DeError::expected("number", "f32")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("boolean", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N}-element array, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-element array for tuple, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0) => 1;
    (A.0, B.1) => 2;
    (A.0, B.1, C.2) => 3;
    (A.0, B.1, C.2, D.3) => 4;
    (A.0, B.1, C.2, D.3, E.4) => 5;
    (A.0, B.1, C.2, D.3, E.4, F.5) => 6;
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6) => 7;
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7) => 8;
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Maps serialize as an array of [key, value] pairs (keys need not be
        // strings). Pairs are sorted by serialized key so output does not
        // depend on hash iteration order.
        let mut pairs: Vec<(Value, Value)> =
            self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Value::Array(pairs.into_iter().map(|(k, v)| Value::Array(vec![k, v])).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array of pairs", "HashMap"))?;
        let mut map = HashMap::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            let pair = item.as_array().ok_or_else(|| DeError::expected("pair", "HashMap"))?;
            if pair.len() != 2 {
                return Err(DeError::expected("[key, value] pair", "HashMap"));
            }
            map.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u32,
        b: Option<f32>,
        #[serde(skip)]
        cache: Vec<u8>,
        tags: Vec<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct NewType(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u8, i64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Plain,
        Weighted { w: f64, n: usize },
        Wrapped(String),
    }

    #[test]
    fn named_struct_roundtrip_with_skip() {
        let v =
            Named { a: 7, b: Some(1.5), cache: vec![1, 2, 3], tags: vec!["x".into(), "y".into()] };
        let tree = v.to_value();
        assert!(get_field(tree.as_object().unwrap(), "cache").is_none());
        let back = Named::from_value(&tree).unwrap();
        assert_eq!(back.a, 7);
        assert_eq!(back.b, Some(1.5));
        assert_eq!(back.cache, Vec::<u8>::new()); // skipped → default
        assert_eq!(back.tags, v.tags);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(NewType(9).to_value(), Value::U64(9));
        assert_eq!(NewType::from_value(&Value::U64(9)).unwrap(), NewType(9));
        assert_eq!(Pair(1, -2).to_value(), Value::Array(vec![Value::U64(1), Value::I64(-2)]));
    }

    #[test]
    fn enum_representations() {
        assert_eq!(Mixed::Plain.to_value(), Value::Str("Plain".into()));
        let w = Mixed::Weighted { w: 0.5, n: 3 }.to_value();
        let back = Mixed::from_value(&w).unwrap();
        assert_eq!(back, Mixed::Weighted { w: 0.5, n: 3 });
        let wrapped = Mixed::Wrapped("hi".into()).to_value();
        assert_eq!(Mixed::from_value(&wrapped).unwrap(), Mixed::Wrapped("hi".into()));
        assert!(Mixed::from_value(&Value::Str("Nope".into())).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let arr: [f64; 3] = [1.0, 2.5, -3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = (1u32, -5i32, String::from("z"));
        assert_eq!(<(u32, i32, String)>::from_value(&tup.to_value()).unwrap(), tup);
        let mut map = HashMap::new();
        map.insert(2u32, "two".to_string());
        map.insert(1u32, "one".to_string());
        let back: HashMap<u32, String> = HashMap::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(Option::<u32>::from_value(&Value::Null).unwrap().is_none());
    }
}
