//! Offline stand-in for `serde_json`: prints and parses the vendored
//! [`serde::Value`] tree as JSON.
//!
//! Floats use Rust's `{:?}` formatting, which emits the shortest decimal
//! string that round-trips at the value's own precision (`f32` values keep
//! `f32` precision via [`serde::Value::F32`]).

use serde::{DeError, Deserialize, Serialize, Value};

/// Errors from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching the real crate's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- printing --------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null"); // matches serde_json: non-finite → null
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::F32(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last hex digit
                                self.expect(b'\\')?;
                                // parse_hex4 expects pos on the 'u' itself.
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse 4 hex digits following `\u`; leaves `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e-3").unwrap(), -0.0025);
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn f32_precision_preserved() {
        let x = 0.1f32;
        let json = to_string(&x).unwrap();
        assert_eq!(json, "0.1"); // shortest f32 repr, not the f64 expansion
        assert_eq!(from_str::<f32>(&json).unwrap(), x);
        let odd = f32::from_bits(0x3f9d_70a4);
        assert_eq!(from_str::<f32>(&to_string(&odd).unwrap()).unwrap(), odd);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tπ \\ ok";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn containers_and_pretty() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[[1,"a"],[2,"b"]]"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
