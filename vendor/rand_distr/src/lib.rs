//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`] and [`LogNormal`] distributions this workspace samples.

use rand::{Rng, RngExt};

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale parameter was negative, NaN, or otherwise invalid.
    BadVariance,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct from mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one of the pair is discarded to keep the
        // distribution stateless (samples stay independent).
        let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1] — log never sees 0
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Construct from the underlying normal's `mu` and `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = LogNormal::new(3.0f64.ln(), 0.6).unwrap();
        let n = 50_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 3.0).abs() < 0.1, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
