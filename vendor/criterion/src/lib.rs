//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition API this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], `criterion_group!`/`criterion_main!` —
//! over a simple timing loop: warm-up, adaptive iteration count, and a
//! fixed number of samples, reporting min/mean/max and throughput.
//!
//! Positional command-line arguments act as substring filters on benchmark
//! names (flags starting with `-`, such as cargo's `--bench`, are ignored).

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, running it enough times per sample for stable numbers.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and iteration sizing: aim for ~25 ms per sample, with at
        // least one iteration.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let once = warmup_start.elapsed();
        let iters = if once.as_nanos() == 0 {
            1000
        } else {
            ((25_000_000 / once.as_nanos().max(1)) as usize).clamp(1, 100_000)
        };
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn stats(&self) -> Option<(Duration, Duration, Duration)> {
        let min = self.samples.iter().min()?;
        let max = self.samples.iter().max()?;
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        Some((*min, mean, *max))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// The benchmark manager: collects CLI filters, runs matching benches.
pub struct Criterion {
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters, default_sample_size: 10 }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_one(self, None, name, None, sample_size, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if !criterion.matches(&full) {
        return;
    }
    let mut bencher = Bencher { samples: Vec::new(), sample_count: sample_size.max(1) };
    f(&mut bencher);
    let Some((min, mean, max)) = bencher.stats() else {
        println!("{full:<40} (no samples)");
        return;
    };
    let mut line = format!(
        "{full:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let mean_s = mean.as_secs_f64();
        if mean_s > 0.0 {
            let rate = match tp {
                Throughput::Elements(n) => fmt_rate(n as f64 / mean_s, "elem"),
                Throughput::Bytes(n) => fmt_rate(n as f64 / mean_s, "B"),
            };
            line.push_str(&format!(" thrpt: {rate}"));
        }
    }
    println!("{line}");
}

/// A set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Define and immediately run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion, Some(&self.name), name, self.throughput, sample_size, f);
        self
    }

    /// End the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Define a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` to run benchmark groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filters: vec![], default_sample_size: 3 };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(4));
            g.sample_size(2);
            g.bench_function("fast", |b| {
                b.iter(|| {
                    ran += 1;
                    std::hint::black_box(2u64 + 2)
                })
            });
            g.finish();
        }
        assert!(ran > 0, "routine must actually run");
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion { filters: vec!["zzz".into()], default_sample_size: 2 };
        let mut ran = false;
        c.bench_function("other_name", |b| b.iter(|| ran = true));
        assert!(!ran, "filtered-out bench must not run");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).contains("ms"));
        assert!(fmt_rate(2.5e6, "elem").contains("Melem/s"));
    }
}
