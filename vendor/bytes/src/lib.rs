//! Offline stand-in for the `bytes` crate: [`Bytes`], [`BytesMut`], and the
//! big-endian [`Buf`]/[`BufMut`] accessors the trace codec uses. Multi-byte
//! integers are big-endian, matching the real crate's defaults.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Cheaply cloneable, immutable byte buffer: an `Arc<[u8]>` plus a window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static slice (copies once; the stand-in has no zero-copy path).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

// The real crate implements `Buf` for `&[u8]`; the trace store decodes
// straight from borrowed payload slices through it.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable, mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_f32(1.5);
        assert_eq!(&buf[1..3], &[0x12, 0x34]); // big-endian on the wire
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(b.get_f32(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_clips() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&*mid, &[2, 3, 4]);
        let inner = mid.slice(1..);
        assert_eq!(&*inner, &[3, 4]);
        assert_eq!(b.len(), 6); // original untouched
    }

    #[test]
    fn bytesmut_is_indexable() {
        let mut raw = BytesMut::from(&b"hello"[..]);
        raw[0] = b'y';
        assert_eq!(&*raw.freeze(), b"yello");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u32();
    }
}
