//! Sanity checks that the stand-in explorer actually explores.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Two `fetch_add` threads always sum correctly — clean model passes.
#[test]
fn fetch_add_is_atomic() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

/// A load-then-store "increment" has a lost-update interleaving; the
/// explorer must find it (i.e. the model must fail).
#[test]
fn explorer_finds_lost_update() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(result.is_err(), "the racy increment must be caught");
}

/// Values flow back through join handles under every schedule.
#[test]
fn join_returns_values() {
    loom::model(|| {
        let h = thread::spawn(|| 41usize);
        let v = h.join().unwrap();
        assert_eq!(v + 1, 42);
    });
}

/// Mutex-protected read-modify-write never loses an update — the model
/// mutex must actually exclude.
#[test]
fn mutex_excludes_under_every_schedule() {
    use loom::sync::{Mutex, PoisonError};
    loom::model(|| {
        let c = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let mut g = c.lock().unwrap_or_else(PoisonError::into_inner);
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap_or_else(PoisonError::into_inner), 2);
    });
}

/// The lock-before-notify handshake completes under every schedule: a
/// notify issued while holding the mutex cannot slip between the
/// waiter's predicate check and its sleep.
#[test]
fn condvar_handshake_never_hangs() {
    use loom::sync::{Condvar, Mutex, PoisonError};
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = pair.clone();
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock().unwrap_or_else(PoisonError::into_inner);
                while !*ready {
                    ready = cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
                }
            })
        };
        let (lock, cv) = &*pair;
        {
            let mut ready = lock.lock().unwrap_or_else(PoisonError::into_inner);
            *ready = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    });
}

/// A notify issued *without* the mutex has a lost-wakeup interleaving;
/// the explorer must report it as a deadlock.
#[test]
fn explorer_finds_lost_wakeup() {
    use loom::sync::{Condvar, Mutex, PoisonError};
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicUsize::new(0)));
            let waiter = {
                let state = state.clone();
                thread::spawn(move || {
                    let (lock, cv, flag) = &*state;
                    let mut g = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    while flag.load(Ordering::SeqCst) == 0 {
                        g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                    }
                })
            };
            let (_, cv, flag) = &*state;
            // Broken on purpose: flag and notify outside the lock.
            flag.store(1, Ordering::SeqCst);
            cv.notify_all();
            waiter.join().unwrap();
        });
    });
    assert!(result.is_err(), "the lost wakeup must be caught as a deadlock");
}
