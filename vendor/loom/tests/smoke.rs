//! Sanity checks that the stand-in explorer actually explores.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Two `fetch_add` threads always sum correctly — clean model passes.
#[test]
fn fetch_add_is_atomic() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

/// A load-then-store "increment" has a lost-update interleaving; the
/// explorer must find it (i.e. the model must fail).
#[test]
fn explorer_finds_lost_update() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(result.is_err(), "the racy increment must be caught");
}

/// Values flow back through join handles under every schedule.
#[test]
fn join_returns_values() {
    loom::model(|| {
        let h = thread::spawn(|| 41usize);
        let v = h.join().unwrap();
        assert_eq!(v + 1, 42);
    });
}
