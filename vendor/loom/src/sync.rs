//! Model-aware synchronization primitives.
//!
//! Each atomic operation passes through a scheduling point before
//! touching memory, so the explorer can interleave it against every
//! other model thread's accesses. Operations execute with sequential
//! consistency regardless of the requested `Ordering` (see the crate
//! docs for why that is sound for the protocols verified here).

pub use std::sync::Arc;

/// Atomic types whose every operation is a scheduling point.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::model::sched_point;

    macro_rules! model_atomic {
        ($name:ident, $inner:ty, $value:ty) => {
            /// Model-checked atomic: each op is a scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $inner,
            }

            impl $name {
                /// A new atomic holding `v`.
                pub const fn new(v: $value) -> Self {
                    Self { inner: <$inner>::new(v) }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $value, _order: Ordering) {
                    sched_point();
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$value, $value> {
                    sched_point();
                    self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Weak compare-exchange; the stand-in never fails
                /// spuriously (a subset of permitted behaviours).
                pub fn compare_exchange_weak(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the value (no scheduling
                /// point: exclusive access).
                pub fn into_inner(self) -> $value {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Atomic add, returning the prior value (scheduling
                /// point).
                pub fn fetch_add(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Atomic subtract, returning the prior value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Atomic max, returning the prior value (scheduling
                /// point).
                pub fn fetch_max(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_max(v, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU32, u32);

    impl AtomicBool {
        /// Atomic OR, returning the prior value (scheduling point).
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            sched_point();
            self.inner.fetch_or(v, Ordering::SeqCst)
        }

        /// Atomic AND, returning the prior value (scheduling point).
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            sched_point();
            self.inner.fetch_and(v, Ordering::SeqCst)
        }
    }
}
