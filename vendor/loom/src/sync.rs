//! Model-aware synchronization primitives.
//!
//! Each atomic operation passes through a scheduling point before
//! touching memory, so the explorer can interleave it against every
//! other model thread's accesses. Operations execute with sequential
//! consistency regardless of the requested `Ordering` (see the crate
//! docs for why that is sound for the protocols verified here).
//!
//! [`Mutex`] and [`Condvar`] mirror their `std::sync` namesakes
//! (including the [`LockResult`] return so
//! `unwrap_or_else(PoisonError::into_inner)` call sites compile
//! unchanged), but block by *parking in the model scheduler* rather
//! than in the OS: a contended `lock` or a `Condvar::wait` marks the
//! thread parked on the primitive's key, and the matching unlock or
//! notify makes it runnable again. A waiter nothing will ever wake is
//! therefore visible to the explorer as a deadlock — which is exactly
//! what a lost-wakeup bug looks like under exhaustive scheduling.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as StdOrdering};

pub use std::sync::Arc;

use crate::model::{in_model, park, sched_point, unpark_all};

/// Process-unique park key for each mutex and condvar instance.
fn next_key() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, StdOrdering::Relaxed)
}

/// Mirror of `std::sync::PoisonError`. The model never actually
/// poisons — a panicking model thread fails the whole execution — so
/// this exists only to keep `LockResult`-shaped call sites compiling.
pub struct PoisonError<T> {
    guard: T,
}

impl<T> PoisonError<T> {
    /// The guard the poisoned lock would have produced.
    pub fn into_inner(self) -> T {
        self.guard
    }
}

/// Mirror of `std::sync::LockResult`; the model side always returns
/// `Ok`.
pub type LockResult<T> = Result<T, PoisonError<T>>;

/// Model-checked mutex: `lock` is a scheduling point, and contended
/// lockers park until the holder's unlock wakes them.
pub struct Mutex<T> {
    /// Model-level ownership flag. Only the flag holder touches
    /// `inner`, so the std mutex below is always uncontended and never
    /// blocks an OS thread while the model schedules another.
    held: AtomicBool,
    key: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { held: AtomicBool::new(false), key: next_key(), inner: std::sync::Mutex::new(value) }
    }

    /// Claim the model-level flag, parking until the holder releases
    /// it. Runs between scheduling points, so the swap is atomic with
    /// respect to every other model thread.
    fn acquire_flag(&self) {
        while self.held.swap(true, StdOrdering::SeqCst) {
            park(self.key, None);
        }
    }

    /// Lock the mutex (scheduling point). Always `Ok` — see
    /// [`PoisonError`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if in_model() {
            sched_point();
            self.acquire_flag();
        }
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard { lock: self, inner: Some(inner) })
    }

    /// Consume the mutex, returning the value (no scheduling point:
    /// exclusive access).
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it (drop) wakes parked
/// lockers.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside [`Condvar::wait`], which releases
    /// and re-acquires the lock through the same guard value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if in_model() && self.lock.held.swap(false, StdOrdering::SeqCst) {
            unpark_all(self.lock.key);
            // Unlock is a scheduling point — but never while unwinding,
            // where a second panic (from a failed execution's abort
            // signal) would escalate to a process abort.
            if !std::thread::panicking() {
                sched_point();
            }
        }
    }
}

/// Model-checked condition variable. `wait` releases the mutex and
/// parks in one scheduler transition, so only wakeups the *code under
/// test* can lose are lost — never ones the model dropped on the floor.
pub struct Condvar {
    key: usize,
    /// Fallback so the primitive still works outside a model run.
    std_cv: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar { key: next_key(), std_cv: std::sync::Condvar::new() }
    }

    /// Release `guard`'s mutex, sleep until notified, re-acquire
    /// (scheduling points at the release and the re-acquire). The
    /// stand-in never wakes spuriously — a subset of permitted
    /// behaviours.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if !in_model() {
            let inner = guard.inner.take().expect("guard holds the lock");
            let inner = self.std_cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.inner = Some(inner);
            return Ok(guard);
        }
        // The window between deciding to sleep and sleeping: a
        // scheduling point *while still holding the lock*. A notifier
        // that (correctly) takes this mutex cannot run here — but one
        // that skips the lock can, and its notification lands before
        // the park below, where the model (rightly) loses it.
        sched_point();
        // Release and park atomically w.r.t. scheduling: drop the
        // (uncontended) std guard, clear the flag, and hand parked
        // lockers their wakeup inside the park transition itself.
        drop(guard.inner.take());
        lock.held.store(false, StdOrdering::SeqCst);
        park(self.key, Some(lock.key));
        lock.acquire_flag();
        guard.inner = Some(lock.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        Ok(guard)
    }

    /// Wake every waiter (scheduling point).
    pub fn notify_all(&self) {
        if in_model() {
            sched_point();
            unpark_all(self.key);
        } else {
            self.std_cv.notify_all();
        }
    }

    /// Wake a waiter. The model wakes *every* parked waiter — they
    /// re-check their predicate and re-park — a sound
    /// over-approximation of `notify_one`.
    pub fn notify_one(&self) {
        self.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Atomic types whose every operation is a scheduling point.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::model::sched_point;

    macro_rules! model_atomic {
        ($name:ident, $inner:ty, $value:ty) => {
            /// Model-checked atomic: each op is a scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $inner,
            }

            impl $name {
                /// A new atomic holding `v`.
                pub const fn new(v: $value) -> Self {
                    Self { inner: <$inner>::new(v) }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $value, _order: Ordering) {
                    sched_point();
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$value, $value> {
                    sched_point();
                    self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Weak compare-exchange; the stand-in never fails
                /// spuriously (a subset of permitted behaviours).
                pub fn compare_exchange_weak(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the value (no scheduling
                /// point: exclusive access).
                pub fn into_inner(self) -> $value {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Atomic add, returning the prior value (scheduling
                /// point).
                pub fn fetch_add(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Atomic subtract, returning the prior value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Atomic max, returning the prior value (scheduling
                /// point).
                pub fn fetch_max(&self, v: $value, _order: Ordering) -> $value {
                    sched_point();
                    self.inner.fetch_max(v, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU32, u32);

    impl AtomicBool {
        /// Atomic OR, returning the prior value (scheduling point).
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            sched_point();
            self.inner.fetch_or(v, Ordering::SeqCst)
        }

        /// Atomic AND, returning the prior value (scheduling point).
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            sched_point();
            self.inner.fetch_and(v, Ordering::SeqCst)
        }
    }
}
