//! Offline stand-in for the `loom` permutation tester.
//!
//! Mirrors the subset of loom's API the workspace uses — [`model`],
//! `loom::thread::{spawn, JoinHandle}`, `loom::sync::atomic`, and
//! `loom::sync::{Mutex, Condvar}` (scheduler-parked, so a lost wakeup
//! surfaces as a detected deadlock) — and,
//! like the real thing, runs the model closure repeatedly, exploring a
//! different thread interleaving on every iteration until the space is
//! exhausted.
//!
//! # How exploration works
//!
//! Model threads run as real OS threads, but only one ever executes at a
//! time: a token is handed from thread to thread at *scheduling points*
//! (every atomic operation, every spawn/join, and thread exit). At each
//! point the runnable thread to execute next is a recorded decision; the
//! driver replays a decision prefix, extends it greedily, and then
//! backtracks depth-first over the last decision with an unexplored
//! alternative. Because every shared-memory access in the modelled code
//! goes through a scheduling point, enumerating all decision sequences
//! enumerates all interleavings of those accesses.
//!
//! # Fidelity limits (vs. real loom)
//!
//! All atomics execute with sequential consistency regardless of the
//! `Ordering` argument: the stand-in explores *interleavings*, not weak
//! memory-order reorderings. For single-location read-modify-write
//! protocols (such as a `fetch_add` work cursor, whose per-location
//! modification order is total under any ordering) this is sound; code
//! relying on cross-location Acquire/Release subtleties would need the
//! real tool. There is also no object-graph leak checking.

pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;
