//! Model-aware `thread::spawn` / `JoinHandle`.

use std::sync::{Arc, Mutex};

use crate::model::{join_thread, register_thread, sched_point};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: Option<usize>,
    result: Arc<Mutex<Option<T>>>,
    /// Fallback when spawned outside a model run.
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawn a model thread. Inside [`crate::model`] the thread is scheduled
/// cooperatively with every other model thread; outside a model run this
/// degrades to a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let body = move || {
        let value = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    };
    match register_thread(Box::new(body)) {
        Ok(tid) => JoinHandle { tid: Some(tid), result, os: None },
        Err(body) => {
            // Not inside `model()`: degrade to a real thread.
            let os = std::thread::spawn(body);
            JoinHandle { tid: None, result, os: Some(os) }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        if let Some(tid) = self.tid {
            join_thread(tid);
        } else if let Some(os) = self.os {
            os.join()?;
        }
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("model thread produced no value (panicked)".to_string())),
        }
    }
}

/// A bare scheduling point, mirroring `std::thread::yield_now`.
pub fn yield_now() {
    sched_point();
}
