//! The exploration driver and the cooperative scheduler it replays.
//!
//! One *execution* runs the model closure with every model thread mapped
//! onto a real OS thread, but gated so exactly one holds the run token at
//! a time. The token moves at scheduling points; which runnable thread
//! receives it is a recorded [`Decision`]. The driver replays a decision
//! prefix, extends it with first-runnable choices, then backtracks
//! depth-first over the deepest decision that still has an unexplored
//! alternative — classic stateless model checking, exhaustive because
//! every shared-memory access in modelled code sits behind a scheduling
//! point.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on executions per [`model`] call. Exceeding it means the
/// model's state space outgrew what "exhaustive" can honestly promise in
/// a test suite, and the run fails loudly rather than silently sampling.
pub const MAX_EXECUTIONS: u64 = 1_000_000;

/// Panic payload used to unwind sibling threads after a model failure; the
/// driver filters it out so only the original panic is reported.
const ABORT: &str = "loom-model-abort";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Eligible to receive the token.
    Runnable,
    /// Waiting for thread `on` to finish (a `join`).
    Blocked { on: usize },
    /// Waiting for an [`unpark_all`] on `key` (a mutex or condvar wait).
    Parked { key: usize },
    /// Exited; never scheduled again.
    Finished,
}

/// One scheduling decision: which of the runnable threads ran next.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// Index into the (tid-sorted) runnable list at that point.
    chosen: usize,
    /// How many threads were runnable — the branching factor.
    alternatives: usize,
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// The token holder.
    current: usize,
    /// Decisions consumed so far this execution.
    step: usize,
    /// Decision indices to replay before extending greedily.
    prefix: Vec<usize>,
    /// The decisions actually taken this execution.
    trace: Vec<Decision>,
    /// First real panic raised by a model thread, if any.
    failed: Option<String>,
    /// Threads registered but not yet finished.
    live: usize,
}

pub(crate) struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Shared {
    fn new(prefix: Vec<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(SchedState {
                threads: Vec::new(),
                current: 0,
                step: 0,
                prefix,
                trace: Vec::new(),
                failed: None,
                live: 0,
            }),
            cv: Condvar::new(),
        })
    }
}

/// Per-OS-thread model identity, set while a model thread runs.
struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn with_ctx<T>(f: impl FnOnce(&Ctx) -> T) -> Option<T> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Pick the next token holder. Must hold the state lock. `exclude_self`
/// is the tid of a thread that just blocked or finished (not runnable),
/// or `usize::MAX` for an ordinary yield.
fn schedule_next(shared: &Shared, state: &mut SchedState) {
    if state.live == 0 {
        shared.cv.notify_all();
        return;
    }
    let runnable: Vec<usize> = state
        .threads
        .iter()
        .enumerate()
        .filter(|&(_, s)| *s == ThreadState::Runnable)
        .map(|(tid, _)| tid)
        .collect();
    if runnable.is_empty() {
        // Live threads but none runnable: every remaining thread waits on
        // a join that can never complete.
        state.failed.get_or_insert_with(|| "deadlock: no runnable model thread".to_string());
        shared.cv.notify_all();
        return;
    }
    let choice = if state.step < state.prefix.len() { state.prefix[state.step] } else { 0 };
    let choice = choice.min(runnable.len() - 1);
    state.trace.push(Decision { chosen: choice, alternatives: runnable.len() });
    state.step += 1;
    state.current = runnable[choice];
    shared.cv.notify_all();
}

/// Block the calling model thread until it holds the token again (or the
/// execution failed, in which case unwind).
fn wait_for_token(shared: &Shared, tid: usize) {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    while state.failed.is_none() && state.current != tid {
        state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
    if state.failed.is_some() {
        drop(state);
        std::panic::panic_any(ABORT);
    }
}

/// A scheduling point: offer the token to any runnable thread (including
/// the caller) and wait to receive it back. No-op outside a model run.
pub(crate) fn sched_point() {
    let Some((shared, tid)) = with_ctx(|c| (c.shared.clone(), c.tid)) else {
        return;
    };
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failed.is_some() {
            drop(state);
            std::panic::panic_any(ABORT);
        }
        schedule_next(&shared, &mut state);
    }
    wait_for_token(&shared, tid);
}

/// Register a new model thread and start its OS thread. Called by
/// `loom::thread::spawn` with the closure already wrapped to store its
/// result. Returns the child's tid, or gives the closure back when
/// called outside a model run (the caller falls back to a real spawn).
pub(crate) fn register_thread(
    body: Box<dyn FnOnce() + Send + 'static>,
) -> Result<usize, Box<dyn FnOnce() + Send + 'static>> {
    let Some(shared) = with_ctx(|c| c.shared.clone()) else {
        return Err(body);
    };
    let tid = {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.threads.push(ThreadState::Runnable);
        state.live += 1;
        state.threads.len() - 1
    };
    let thread_shared = shared.clone();
    std::thread::spawn(move || run_model_thread(thread_shared, tid, body));
    Ok(tid)
}

/// Body wrapper every model thread runs: install the context, wait for
/// the first token grant, run, then execute the exit protocol.
fn run_model_thread(shared: Arc<Shared>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { shared: shared.clone(), tid }));
    wait_for_token(&shared, tid);
    let result = catch_unwind(AssertUnwindSafe(body));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    if let Err(payload) = result {
        let msg = panic_message(&payload);
        if msg != ABORT {
            state.failed.get_or_insert(msg);
        }
    }
    state.threads[tid] = ThreadState::Finished;
    state.live -= 1;
    // Joiners of this thread become runnable again.
    for s in state.threads.iter_mut() {
        if *s == (ThreadState::Blocked { on: tid }) {
            *s = ThreadState::Runnable;
        }
    }
    schedule_next(&shared, &mut state);
}

/// Whether the caller is a model thread (inside a [`model`] run).
pub(crate) fn in_model() -> bool {
    with_ctx(|_| ()).is_some()
}

fn wake_parked(state: &mut SchedState, key: usize) {
    for s in state.threads.iter_mut() {
        if *s == (ThreadState::Parked { key }) {
            *s = ThreadState::Runnable;
        }
    }
}

/// Park the calling thread on `key` until some thread calls
/// [`unpark_all`] with the same key. When `wake` is given, every thread
/// parked on *that* key becomes runnable in the same scheduler
/// transition — the condvar wait protocol, where releasing the mutex
/// and going to sleep must admit no intervening schedule (a wakeup
/// between the two would otherwise be lost by the model itself rather
/// than by the code under test). No-op outside a model run.
pub(crate) fn park(key: usize, wake: Option<usize>) {
    let Some((shared, tid)) = with_ctx(|c| (c.shared.clone(), c.tid)) else {
        return;
    };
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failed.is_some() {
            drop(state);
            std::panic::panic_any(ABORT);
        }
        if let Some(wake_key) = wake {
            wake_parked(&mut state, wake_key);
        }
        state.threads[tid] = ThreadState::Parked { key };
        schedule_next(&shared, &mut state);
    }
    wait_for_token(&shared, tid);
}

/// Make every thread parked on `key` runnable. Not itself a scheduling
/// point — the caller keeps the token until its next one. No-op outside
/// a model run.
pub(crate) fn unpark_all(key: usize) {
    let Some(shared) = with_ctx(|c| c.shared.clone()) else {
        return;
    };
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    wake_parked(&mut state, key);
}

/// Block the caller until thread `target` finishes (a model `join`).
pub(crate) fn join_thread(target: usize) {
    let Some((shared, tid)) = with_ctx(|c| (c.shared.clone(), c.tid)) else {
        return;
    };
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failed.is_some() {
            drop(state);
            std::panic::panic_any(ABORT);
        }
        if state.threads[target] != ThreadState::Finished {
            state.threads[tid] = ThreadState::Blocked { on: target };
            schedule_next(&shared, &mut state);
        }
        // Already finished: joining is a no-op, keep the token.
    }
    wait_for_token(&shared, tid);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Run `f` under every possible interleaving of its model threads'
/// scheduling points, panicking (with the offending schedule) if any
/// execution panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom model exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        let shared = Shared::new(prefix.clone());
        {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.threads.push(ThreadState::Runnable); // tid 0: the root
            state.live = 1;
            state.current = 0;
        }
        let root = f.clone();
        let root_shared = shared.clone();
        let handle = std::thread::spawn(move || run_model_thread(root_shared, 0, move || root()));
        // The root's exit protocol schedules children onward; everything
        // is done when no live threads remain.
        {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while state.live > 0 && state.failed.is_none() {
                state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        let _ = handle.join();
        // Give straggler threads (unwinding on the failed flag) a moment:
        // they hold no state we read below except under the lock.
        let (trace, failed) = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while state.live > 0 {
                state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            (state.trace.clone(), state.failed.take())
        };
        if let Some(msg) = failed {
            let schedule: Vec<usize> = trace.iter().map(|d| d.chosen).collect();
            panic!(
                "loom model failed after {executions} execution(s): {msg}\n  schedule: {schedule:?}"
            );
        }
        // Depth-first backtrack: bump the deepest decision with an
        // unexplored alternative, drop everything after it.
        let Some(deepest) = trace.iter().rposition(|d| d.chosen + 1 < d.alternatives) else {
            return; // space exhausted
        };
        prefix = trace.iter().take(deepest).map(|d| d.chosen).collect();
        prefix.push(trace[deepest].chosen + 1);
    }
}
