/root/repo/target/debug/examples/fleet_audit-844ab52969cc8d1b.d: examples/fleet_audit.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_audit-844ab52969cc8d1b.rmeta: examples/fleet_audit.rs Cargo.toml

examples/fleet_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
