/root/repo/target/debug/examples/legacy_sunset-01b5e5c66169beab.d: examples/legacy_sunset.rs Cargo.toml

/root/repo/target/debug/examples/liblegacy_sunset-01b5e5c66169beab.rmeta: examples/legacy_sunset.rs Cargo.toml

examples/legacy_sunset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
