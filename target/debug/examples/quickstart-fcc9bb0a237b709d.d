/root/repo/target/debug/examples/quickstart-fcc9bb0a237b709d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fcc9bb0a237b709d: examples/quickstart.rs

examples/quickstart.rs:
