/root/repo/target/debug/examples/rush_hour-5bea5f807179281a.d: examples/rush_hour.rs Cargo.toml

/root/repo/target/debug/examples/librush_hour-5bea5f807179281a.rmeta: examples/rush_hour.rs Cargo.toml

examples/rush_hour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
