/root/repo/target/debug/examples/fleet_audit-cebd1d773173376f.d: examples/fleet_audit.rs

/root/repo/target/debug/examples/fleet_audit-cebd1d773173376f: examples/fleet_audit.rs

examples/fleet_audit.rs:
