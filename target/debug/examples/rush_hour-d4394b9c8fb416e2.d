/root/repo/target/debug/examples/rush_hour-d4394b9c8fb416e2.d: examples/rush_hour.rs

/root/repo/target/debug/examples/rush_hour-d4394b9c8fb416e2: examples/rush_hour.rs

examples/rush_hour.rs:
