/root/repo/target/debug/examples/legacy_sunset-8fe47d2b80be2cda.d: examples/legacy_sunset.rs

/root/repo/target/debug/examples/legacy_sunset-8fe47d2b80be2cda: examples/legacy_sunset.rs

examples/legacy_sunset.rs:
