/root/repo/target/debug/deps/telco_signaling-45b6584f04db7e37.d: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/debug/deps/telco_signaling-45b6584f04db7e37: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

crates/telco-signaling/src/lib.rs:
crates/telco-signaling/src/causes.rs:
crates/telco-signaling/src/duration.rs:
crates/telco-signaling/src/entities.rs:
crates/telco-signaling/src/events.rs:
crates/telco-signaling/src/failure.rs:
crates/telco-signaling/src/messages.rs:
crates/telco-signaling/src/state_machine.rs:
