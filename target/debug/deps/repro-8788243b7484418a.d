/root/repo/target/debug/deps/repro-8788243b7484418a.d: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs Cargo.toml

/root/repo/target/debug/deps/librepro-8788243b7484418a.rmeta: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs Cargo.toml

crates/telco-experiments/src/main.rs:
crates/telco-experiments/src/bench_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
