/root/repo/target/debug/deps/proptests-c41f33168e5f4791.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c41f33168e5f4791.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
