/root/repo/target/debug/deps/telco_bench-2b94cbe53197e470.d: crates/telco-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_bench-2b94cbe53197e470.rmeta: crates/telco-bench/src/lib.rs Cargo.toml

crates/telco-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
