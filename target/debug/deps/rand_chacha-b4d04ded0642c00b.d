/root/repo/target/debug/deps/rand_chacha-b4d04ded0642c00b.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-b4d04ded0642c00b.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
