/root/repo/target/debug/deps/telco_signaling-972f6f853379e140.d: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_signaling-972f6f853379e140.rmeta: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs Cargo.toml

crates/telco-signaling/src/lib.rs:
crates/telco-signaling/src/causes.rs:
crates/telco-signaling/src/duration.rs:
crates/telco-signaling/src/entities.rs:
crates/telco-signaling/src/events.rs:
crates/telco-signaling/src/failure.rs:
crates/telco-signaling/src/messages.rs:
crates/telco-signaling/src/state_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
