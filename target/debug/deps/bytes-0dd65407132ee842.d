/root/repo/target/debug/deps/bytes-0dd65407132ee842.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0dd65407132ee842.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0dd65407132ee842.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
