/root/repo/target/debug/deps/determinism-6e6dbc806cce670d.d: crates/telco-sim/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-6e6dbc806cce670d.rmeta: crates/telco-sim/tests/determinism.rs Cargo.toml

crates/telco-sim/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
