/root/repo/target/debug/deps/telco_sim-36a0f5ce6e10f72d.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_sim-36a0f5ce6e10f72d.rmeta: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs Cargo.toml

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
