/root/repo/target/debug/deps/experiments-da5e362492248486.d: crates/telco-bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-da5e362492248486.rmeta: crates/telco-bench/benches/experiments.rs Cargo.toml

crates/telco-bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
