/root/repo/target/debug/deps/telco_mobility-bae480e7dbf76ded.d: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/debug/deps/telco_mobility-bae480e7dbf76ded: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

crates/telco-mobility/src/lib.rs:
crates/telco-mobility/src/assign.rs:
crates/telco-mobility/src/metrics.rs:
crates/telco-mobility/src/profile.rs:
crates/telco-mobility/src/schedule.rs:
crates/telco-mobility/src/trajectory.rs:
