/root/repo/target/debug/deps/telco_sim-034c82c015d2b921.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/debug/deps/telco_sim-034c82c015d2b921: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
