/root/repo/target/debug/deps/rand_chacha-c6ba82031ee761f4.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c6ba82031ee761f4.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c6ba82031ee761f4.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
