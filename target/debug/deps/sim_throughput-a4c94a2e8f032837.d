/root/repo/target/debug/deps/sim_throughput-a4c94a2e8f032837.d: crates/telco-bench/benches/sim_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-a4c94a2e8f032837.rmeta: crates/telco-bench/benches/sim_throughput.rs Cargo.toml

crates/telco-bench/benches/sim_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
