/root/repo/target/debug/deps/telco_devices-fb6fc866ef92e5b6.d: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/debug/deps/libtelco_devices-fb6fc866ef92e5b6.rlib: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/debug/deps/libtelco_devices-fb6fc866ef92e5b6.rmeta: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

crates/telco-devices/src/lib.rs:
crates/telco-devices/src/apn.rs:
crates/telco-devices/src/catalog.rs:
crates/telco-devices/src/ids.rs:
crates/telco-devices/src/population.rs:
crates/telco-devices/src/types.rs:
