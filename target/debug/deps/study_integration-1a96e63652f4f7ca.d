/root/repo/target/debug/deps/study_integration-1a96e63652f4f7ca.d: tests/study_integration.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_integration-1a96e63652f4f7ca.rmeta: tests/study_integration.rs Cargo.toml

tests/study_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
