/root/repo/target/debug/deps/telco_signaling-bbd3b96b0f840444.d: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/debug/deps/libtelco_signaling-bbd3b96b0f840444.rlib: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/debug/deps/libtelco_signaling-bbd3b96b0f840444.rmeta: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

crates/telco-signaling/src/lib.rs:
crates/telco-signaling/src/causes.rs:
crates/telco-signaling/src/duration.rs:
crates/telco-signaling/src/entities.rs:
crates/telco-signaling/src/events.rs:
crates/telco-signaling/src/failure.rs:
crates/telco-signaling/src/messages.rs:
crates/telco-signaling/src/state_machine.rs:
