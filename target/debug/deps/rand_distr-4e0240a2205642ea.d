/root/repo/target/debug/deps/rand_distr-4e0240a2205642ea.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-4e0240a2205642ea.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-4e0240a2205642ea.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
