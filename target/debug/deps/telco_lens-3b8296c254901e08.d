/root/repo/target/debug/deps/telco_lens-3b8296c254901e08.d: src/lib.rs

/root/repo/target/debug/deps/telco_lens-3b8296c254901e08: src/lib.rs

src/lib.rs:
