/root/repo/target/debug/deps/sample_points_props-43065208005c40a0.d: crates/telco-sim/tests/sample_points_props.rs

/root/repo/target/debug/deps/sample_points_props-43065208005c40a0: crates/telco-sim/tests/sample_points_props.rs

crates/telco-sim/tests/sample_points_props.rs:
