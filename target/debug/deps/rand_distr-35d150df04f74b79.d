/root/repo/target/debug/deps/rand_distr-35d150df04f74b79.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-35d150df04f74b79.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
