/root/repo/target/debug/deps/serde_json-8f4d082808c13d67.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-8f4d082808c13d67.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
