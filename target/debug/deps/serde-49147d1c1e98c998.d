/root/repo/target/debug/deps/serde-49147d1c1e98c998.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-49147d1c1e98c998.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
