/root/repo/target/debug/deps/telco_devices-ec35b819613ccca5.d: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/debug/deps/telco_devices-ec35b819613ccca5: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

crates/telco-devices/src/lib.rs:
crates/telco-devices/src/apn.rs:
crates/telco-devices/src/catalog.rs:
crates/telco-devices/src/ids.rs:
crates/telco-devices/src/population.rs:
crates/telco-devices/src/types.rs:
