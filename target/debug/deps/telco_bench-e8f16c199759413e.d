/root/repo/target/debug/deps/telco_bench-e8f16c199759413e.d: crates/telco-bench/src/lib.rs

/root/repo/target/debug/deps/telco_bench-e8f16c199759413e: crates/telco-bench/src/lib.rs

crates/telco-bench/src/lib.rs:
