/root/repo/target/debug/deps/telco_topology-f80abb13f5bca016.d: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

/root/repo/target/debug/deps/telco_topology-f80abb13f5bca016: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

crates/telco-topology/src/lib.rs:
crates/telco-topology/src/deployment.rs:
crates/telco-topology/src/elements.rs:
crates/telco-topology/src/energy.rs:
crates/telco-topology/src/evolution.rs:
crates/telco-topology/src/neighbors.rs:
crates/telco-topology/src/rat.rs:
crates/telco-topology/src/vendor.rs:
