/root/repo/target/debug/deps/telco_geo-2f3d47c5be3e3f39.d: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

/root/repo/target/debug/deps/telco_geo-2f3d47c5be3e3f39: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

crates/telco-geo/src/lib.rs:
crates/telco-geo/src/census.rs:
crates/telco-geo/src/coords.rs:
crates/telco-geo/src/country.rs:
crates/telco-geo/src/district.rs:
crates/telco-geo/src/grid.rs:
crates/telco-geo/src/postcode.rs:
