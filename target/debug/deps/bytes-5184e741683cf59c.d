/root/repo/target/debug/deps/bytes-5184e741683cf59c.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-5184e741683cf59c.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
