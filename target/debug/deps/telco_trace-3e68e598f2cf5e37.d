/root/repo/target/debug/deps/telco_trace-3e68e598f2cf5e37.d: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/debug/deps/libtelco_trace-3e68e598f2cf5e37.rlib: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/debug/deps/libtelco_trace-3e68e598f2cf5e37.rmeta: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

crates/telco-trace/src/lib.rs:
crates/telco-trace/src/anonymize.rs:
crates/telco-trace/src/dataset.rs:
crates/telco-trace/src/io.rs:
crates/telco-trace/src/record.rs:
