/root/repo/target/debug/deps/proptests-1fca0ce1d469c7de.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-1fca0ce1d469c7de: tests/proptests.rs

tests/proptests.rs:
