/root/repo/target/debug/deps/telco_analytics-ae765e47754f0a79.d: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

/root/repo/target/debug/deps/libtelco_analytics-ae765e47754f0a79.rlib: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

/root/repo/target/debug/deps/libtelco_analytics-ae765e47754f0a79.rmeta: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

crates/telco-analytics/src/lib.rs:
crates/telco-analytics/src/frame.rs:
crates/telco-analytics/src/geodemo.rs:
crates/telco-analytics/src/handovers.rs:
crates/telco-analytics/src/heterogeneity.rs:
crates/telco-analytics/src/hof.rs:
crates/telco-analytics/src/manufacturer.rs:
crates/telco-analytics/src/mobility_analysis.rs:
crates/telco-analytics/src/modeling.rs:
crates/telco-analytics/src/pingpong.rs:
crates/telco-analytics/src/study.rs:
crates/telco-analytics/src/tables.rs:
crates/telco-analytics/src/timeseries.rs:
crates/telco-analytics/src/vendor_analysis.rs:
