/root/repo/target/debug/deps/determinism-ccfbedd0ac926284.d: crates/telco-sim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-ccfbedd0ac926284: crates/telco-sim/tests/determinism.rs

crates/telco-sim/tests/determinism.rs:
