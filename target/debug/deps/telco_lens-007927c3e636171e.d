/root/repo/target/debug/deps/telco_lens-007927c3e636171e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_lens-007927c3e636171e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
