/root/repo/target/debug/deps/telco_trace-45d412c5b7685155.d: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_trace-45d412c5b7685155.rmeta: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs Cargo.toml

crates/telco-trace/src/lib.rs:
crates/telco-trace/src/anonymize.rs:
crates/telco-trace/src/dataset.rs:
crates/telco-trace/src/io.rs:
crates/telco-trace/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
