/root/repo/target/debug/deps/telco_mobility-8754cef17563a0a2.d: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/debug/deps/libtelco_mobility-8754cef17563a0a2.rlib: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/debug/deps/libtelco_mobility-8754cef17563a0a2.rmeta: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

crates/telco-mobility/src/lib.rs:
crates/telco-mobility/src/assign.rs:
crates/telco-mobility/src/metrics.rs:
crates/telco-mobility/src/profile.rs:
crates/telco-mobility/src/schedule.rs:
crates/telco-mobility/src/trajectory.rs:
