/root/repo/target/debug/deps/telco_stats-65f70d0bd81090d5.d: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs

/root/repo/target/debug/deps/telco_stats-65f70d0bd81090d5: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs

crates/telco-stats/src/lib.rs:
crates/telco-stats/src/anova.rs:
crates/telco-stats/src/boxplot.rs:
crates/telco-stats/src/corr.rs:
crates/telco-stats/src/desc.rs:
crates/telco-stats/src/ecdf.rs:
crates/telco-stats/src/forest.rs:
crates/telco-stats/src/hist.rs:
crates/telco-stats/src/kruskal.rs:
crates/telco-stats/src/linalg.rs:
crates/telco-stats/src/quantile_reg.rs:
crates/telco-stats/src/regression.rs:
crates/telco-stats/src/special.rs:
