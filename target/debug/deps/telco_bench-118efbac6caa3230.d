/root/repo/target/debug/deps/telco_bench-118efbac6caa3230.d: crates/telco-bench/src/lib.rs

/root/repo/target/debug/deps/libtelco_bench-118efbac6caa3230.rlib: crates/telco-bench/src/lib.rs

/root/repo/target/debug/deps/libtelco_bench-118efbac6caa3230.rmeta: crates/telco-bench/src/lib.rs

crates/telco-bench/src/lib.rs:
