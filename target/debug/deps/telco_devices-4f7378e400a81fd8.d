/root/repo/target/debug/deps/telco_devices-4f7378e400a81fd8.d: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_devices-4f7378e400a81fd8.rmeta: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs Cargo.toml

crates/telco-devices/src/lib.rs:
crates/telco-devices/src/apn.rs:
crates/telco-devices/src/catalog.rs:
crates/telco-devices/src/ids.rs:
crates/telco-devices/src/population.rs:
crates/telco-devices/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
