/root/repo/target/debug/deps/telco_geo-bc70df7c06c738f1.d: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_geo-bc70df7c06c738f1.rmeta: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs Cargo.toml

crates/telco-geo/src/lib.rs:
crates/telco-geo/src/census.rs:
crates/telco-geo/src/coords.rs:
crates/telco-geo/src/country.rs:
crates/telco-geo/src/district.rs:
crates/telco-geo/src/grid.rs:
crates/telco-geo/src/postcode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
