/root/repo/target/debug/deps/kernels-d3c91702ecc733be.d: crates/telco-bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-d3c91702ecc733be.rmeta: crates/telco-bench/benches/kernels.rs Cargo.toml

crates/telco-bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
