/root/repo/target/debug/deps/telco_topology-0713927b7c9db174.d: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

/root/repo/target/debug/deps/libtelco_topology-0713927b7c9db174.rlib: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

/root/repo/target/debug/deps/libtelco_topology-0713927b7c9db174.rmeta: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

crates/telco-topology/src/lib.rs:
crates/telco-topology/src/deployment.rs:
crates/telco-topology/src/elements.rs:
crates/telco-topology/src/energy.rs:
crates/telco-topology/src/evolution.rs:
crates/telco-topology/src/neighbors.rs:
crates/telco-topology/src/rat.rs:
crates/telco-topology/src/vendor.rs:
