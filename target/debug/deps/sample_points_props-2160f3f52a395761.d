/root/repo/target/debug/deps/sample_points_props-2160f3f52a395761.d: crates/telco-sim/tests/sample_points_props.rs Cargo.toml

/root/repo/target/debug/deps/libsample_points_props-2160f3f52a395761.rmeta: crates/telco-sim/tests/sample_points_props.rs Cargo.toml

crates/telco-sim/tests/sample_points_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
