/root/repo/target/debug/deps/telco_geo-e9e351cba56e9a16.d: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

/root/repo/target/debug/deps/libtelco_geo-e9e351cba56e9a16.rlib: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

/root/repo/target/debug/deps/libtelco_geo-e9e351cba56e9a16.rmeta: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

crates/telco-geo/src/lib.rs:
crates/telco-geo/src/census.rs:
crates/telco-geo/src/coords.rs:
crates/telco-geo/src/country.rs:
crates/telco-geo/src/district.rs:
crates/telco-geo/src/grid.rs:
crates/telco-geo/src/postcode.rs:
