/root/repo/target/debug/deps/telco_topology-e2e5429406a17b24.d: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_topology-e2e5429406a17b24.rmeta: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs Cargo.toml

crates/telco-topology/src/lib.rs:
crates/telco-topology/src/deployment.rs:
crates/telco-topology/src/elements.rs:
crates/telco-topology/src/energy.rs:
crates/telco-topology/src/evolution.rs:
crates/telco-topology/src/neighbors.rs:
crates/telco-topology/src/rat.rs:
crates/telco-topology/src/vendor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
