/root/repo/target/debug/deps/zero_alloc-1a84e18d26153f37.d: crates/telco-sim/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-1a84e18d26153f37: crates/telco-sim/tests/zero_alloc.rs

crates/telco-sim/tests/zero_alloc.rs:
