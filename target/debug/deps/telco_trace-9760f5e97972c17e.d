/root/repo/target/debug/deps/telco_trace-9760f5e97972c17e.d: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/debug/deps/telco_trace-9760f5e97972c17e: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

crates/telco-trace/src/lib.rs:
crates/telco-trace/src/anonymize.rs:
crates/telco-trace/src/dataset.rs:
crates/telco-trace/src/io.rs:
crates/telco-trace/src/record.rs:
