/root/repo/target/debug/deps/study_integration-9e1c51ff17feb095.d: tests/study_integration.rs

/root/repo/target/debug/deps/study_integration-9e1c51ff17feb095: tests/study_integration.rs

tests/study_integration.rs:
