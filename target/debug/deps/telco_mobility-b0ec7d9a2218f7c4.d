/root/repo/target/debug/deps/telco_mobility-b0ec7d9a2218f7c4.d: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_mobility-b0ec7d9a2218f7c4.rmeta: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs Cargo.toml

crates/telco-mobility/src/lib.rs:
crates/telco-mobility/src/assign.rs:
crates/telco-mobility/src/metrics.rs:
crates/telco-mobility/src/profile.rs:
crates/telco-mobility/src/schedule.rs:
crates/telco-mobility/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
