/root/repo/target/debug/deps/telco_lens-e5e4defc24157ebf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_lens-e5e4defc24157ebf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
