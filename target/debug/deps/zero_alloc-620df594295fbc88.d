/root/repo/target/debug/deps/zero_alloc-620df594295fbc88.d: crates/telco-sim/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-620df594295fbc88.rmeta: crates/telco-sim/tests/zero_alloc.rs Cargo.toml

crates/telco-sim/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
