/root/repo/target/debug/deps/telco_sim-9a1556ca610d3f85.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/debug/deps/libtelco_sim-9a1556ca610d3f85.rlib: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/debug/deps/libtelco_sim-9a1556ca610d3f85.rmeta: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
