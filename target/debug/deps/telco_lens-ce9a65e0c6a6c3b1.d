/root/repo/target/debug/deps/telco_lens-ce9a65e0c6a6c3b1.d: src/lib.rs

/root/repo/target/debug/deps/libtelco_lens-ce9a65e0c6a6c3b1.rlib: src/lib.rs

/root/repo/target/debug/deps/libtelco_lens-ce9a65e0c6a6c3b1.rmeta: src/lib.rs

src/lib.rs:
