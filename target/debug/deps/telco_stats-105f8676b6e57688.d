/root/repo/target/debug/deps/telco_stats-105f8676b6e57688.d: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs Cargo.toml

/root/repo/target/debug/deps/libtelco_stats-105f8676b6e57688.rmeta: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs Cargo.toml

crates/telco-stats/src/lib.rs:
crates/telco-stats/src/anova.rs:
crates/telco-stats/src/boxplot.rs:
crates/telco-stats/src/corr.rs:
crates/telco-stats/src/desc.rs:
crates/telco-stats/src/ecdf.rs:
crates/telco-stats/src/forest.rs:
crates/telco-stats/src/hist.rs:
crates/telco-stats/src/kruskal.rs:
crates/telco-stats/src/linalg.rs:
crates/telco-stats/src/quantile_reg.rs:
crates/telco-stats/src/regression.rs:
crates/telco-stats/src/special.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
