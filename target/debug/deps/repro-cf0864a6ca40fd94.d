/root/repo/target/debug/deps/repro-cf0864a6ca40fd94.d: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs

/root/repo/target/debug/deps/repro-cf0864a6ca40fd94: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs

crates/telco-experiments/src/main.rs:
crates/telco-experiments/src/bench_runner.rs:
