/root/repo/target/release/deps/telco_devices-fa471ee148db5668.d: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/release/deps/telco_devices-fa471ee148db5668: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

crates/telco-devices/src/lib.rs:
crates/telco-devices/src/apn.rs:
crates/telco-devices/src/catalog.rs:
crates/telco-devices/src/ids.rs:
crates/telco-devices/src/population.rs:
crates/telco-devices/src/types.rs:
