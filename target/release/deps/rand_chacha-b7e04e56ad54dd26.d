/root/repo/target/release/deps/rand_chacha-b7e04e56ad54dd26.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b7e04e56ad54dd26.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b7e04e56ad54dd26.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
