/root/repo/target/release/deps/repro-48a3a0f99a68506e.d: crates/telco-experiments/src/main.rs

/root/repo/target/release/deps/repro-48a3a0f99a68506e: crates/telco-experiments/src/main.rs

crates/telco-experiments/src/main.rs:
