/root/repo/target/release/deps/proptests-f7764e5f0fae50d4.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-f7764e5f0fae50d4: tests/proptests.rs

tests/proptests.rs:
