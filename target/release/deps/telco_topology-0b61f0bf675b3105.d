/root/repo/target/release/deps/telco_topology-0b61f0bf675b3105.d: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

/root/repo/target/release/deps/libtelco_topology-0b61f0bf675b3105.rlib: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

/root/repo/target/release/deps/libtelco_topology-0b61f0bf675b3105.rmeta: crates/telco-topology/src/lib.rs crates/telco-topology/src/deployment.rs crates/telco-topology/src/elements.rs crates/telco-topology/src/energy.rs crates/telco-topology/src/evolution.rs crates/telco-topology/src/neighbors.rs crates/telco-topology/src/rat.rs crates/telco-topology/src/vendor.rs

crates/telco-topology/src/lib.rs:
crates/telco-topology/src/deployment.rs:
crates/telco-topology/src/elements.rs:
crates/telco-topology/src/energy.rs:
crates/telco-topology/src/evolution.rs:
crates/telco-topology/src/neighbors.rs:
crates/telco-topology/src/rat.rs:
crates/telco-topology/src/vendor.rs:
