/root/repo/target/release/deps/telco_bench-4c4e21b462466653.d: crates/telco-bench/src/lib.rs

/root/repo/target/release/deps/libtelco_bench-4c4e21b462466653.rlib: crates/telco-bench/src/lib.rs

/root/repo/target/release/deps/libtelco_bench-4c4e21b462466653.rmeta: crates/telco-bench/src/lib.rs

crates/telco-bench/src/lib.rs:
