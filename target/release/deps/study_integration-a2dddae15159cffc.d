/root/repo/target/release/deps/study_integration-a2dddae15159cffc.d: tests/study_integration.rs

/root/repo/target/release/deps/study_integration-a2dddae15159cffc: tests/study_integration.rs

tests/study_integration.rs:
