/root/repo/target/release/deps/telco_devices-b4619782690a4134.d: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/release/deps/libtelco_devices-b4619782690a4134.rlib: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

/root/repo/target/release/deps/libtelco_devices-b4619782690a4134.rmeta: crates/telco-devices/src/lib.rs crates/telco-devices/src/apn.rs crates/telco-devices/src/catalog.rs crates/telco-devices/src/ids.rs crates/telco-devices/src/population.rs crates/telco-devices/src/types.rs

crates/telco-devices/src/lib.rs:
crates/telco-devices/src/apn.rs:
crates/telco-devices/src/catalog.rs:
crates/telco-devices/src/ids.rs:
crates/telco-devices/src/population.rs:
crates/telco-devices/src/types.rs:
