/root/repo/target/release/deps/telco_lens-af388f18c511900f.d: src/lib.rs

/root/repo/target/release/deps/libtelco_lens-af388f18c511900f.rlib: src/lib.rs

/root/repo/target/release/deps/libtelco_lens-af388f18c511900f.rmeta: src/lib.rs

src/lib.rs:
