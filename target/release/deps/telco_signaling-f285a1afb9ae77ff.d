/root/repo/target/release/deps/telco_signaling-f285a1afb9ae77ff.d: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/release/deps/libtelco_signaling-f285a1afb9ae77ff.rlib: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/release/deps/libtelco_signaling-f285a1afb9ae77ff.rmeta: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

crates/telco-signaling/src/lib.rs:
crates/telco-signaling/src/causes.rs:
crates/telco-signaling/src/duration.rs:
crates/telco-signaling/src/entities.rs:
crates/telco-signaling/src/events.rs:
crates/telco-signaling/src/failure.rs:
crates/telco-signaling/src/messages.rs:
crates/telco-signaling/src/state_machine.rs:
