/root/repo/target/release/deps/telco_analytics-860e4997bd7b74d1.d: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

/root/repo/target/release/deps/libtelco_analytics-860e4997bd7b74d1.rlib: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

/root/repo/target/release/deps/libtelco_analytics-860e4997bd7b74d1.rmeta: crates/telco-analytics/src/lib.rs crates/telco-analytics/src/frame.rs crates/telco-analytics/src/geodemo.rs crates/telco-analytics/src/handovers.rs crates/telco-analytics/src/heterogeneity.rs crates/telco-analytics/src/hof.rs crates/telco-analytics/src/manufacturer.rs crates/telco-analytics/src/mobility_analysis.rs crates/telco-analytics/src/modeling.rs crates/telco-analytics/src/pingpong.rs crates/telco-analytics/src/study.rs crates/telco-analytics/src/tables.rs crates/telco-analytics/src/timeseries.rs crates/telco-analytics/src/vendor_analysis.rs

crates/telco-analytics/src/lib.rs:
crates/telco-analytics/src/frame.rs:
crates/telco-analytics/src/geodemo.rs:
crates/telco-analytics/src/handovers.rs:
crates/telco-analytics/src/heterogeneity.rs:
crates/telco-analytics/src/hof.rs:
crates/telco-analytics/src/manufacturer.rs:
crates/telco-analytics/src/mobility_analysis.rs:
crates/telco-analytics/src/modeling.rs:
crates/telco-analytics/src/pingpong.rs:
crates/telco-analytics/src/study.rs:
crates/telco-analytics/src/tables.rs:
crates/telco-analytics/src/timeseries.rs:
crates/telco-analytics/src/vendor_analysis.rs:
