/root/repo/target/release/deps/telco_trace-06bb0adfbc23ea53.d: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/release/deps/telco_trace-06bb0adfbc23ea53: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

crates/telco-trace/src/lib.rs:
crates/telco-trace/src/anonymize.rs:
crates/telco-trace/src/dataset.rs:
crates/telco-trace/src/io.rs:
crates/telco-trace/src/record.rs:
