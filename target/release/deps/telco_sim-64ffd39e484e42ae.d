/root/repo/target/release/deps/telco_sim-64ffd39e484e42ae.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/release/deps/libtelco_sim-64ffd39e484e42ae.rlib: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/release/deps/libtelco_sim-64ffd39e484e42ae.rmeta: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
