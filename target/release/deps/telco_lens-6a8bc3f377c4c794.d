/root/repo/target/release/deps/telco_lens-6a8bc3f377c4c794.d: src/lib.rs

/root/repo/target/release/deps/libtelco_lens-6a8bc3f377c4c794.rlib: src/lib.rs

/root/repo/target/release/deps/libtelco_lens-6a8bc3f377c4c794.rmeta: src/lib.rs

src/lib.rs:
