/root/repo/target/release/deps/telco_lens-b203787cee37064e.d: src/lib.rs

/root/repo/target/release/deps/telco_lens-b203787cee37064e: src/lib.rs

src/lib.rs:
