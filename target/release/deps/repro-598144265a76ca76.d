/root/repo/target/release/deps/repro-598144265a76ca76.d: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs

/root/repo/target/release/deps/repro-598144265a76ca76: crates/telco-experiments/src/main.rs crates/telco-experiments/src/bench_runner.rs

crates/telco-experiments/src/main.rs:
crates/telco-experiments/src/bench_runner.rs:
