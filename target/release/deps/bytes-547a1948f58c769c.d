/root/repo/target/release/deps/bytes-547a1948f58c769c.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-547a1948f58c769c.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-547a1948f58c769c.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
