/root/repo/target/release/deps/telco_bench-ce7554f4dc32e434.d: crates/telco-bench/src/lib.rs

/root/repo/target/release/deps/telco_bench-ce7554f4dc32e434: crates/telco-bench/src/lib.rs

crates/telco-bench/src/lib.rs:
