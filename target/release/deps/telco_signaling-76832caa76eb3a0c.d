/root/repo/target/release/deps/telco_signaling-76832caa76eb3a0c.d: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

/root/repo/target/release/deps/telco_signaling-76832caa76eb3a0c: crates/telco-signaling/src/lib.rs crates/telco-signaling/src/causes.rs crates/telco-signaling/src/duration.rs crates/telco-signaling/src/entities.rs crates/telco-signaling/src/events.rs crates/telco-signaling/src/failure.rs crates/telco-signaling/src/messages.rs crates/telco-signaling/src/state_machine.rs

crates/telco-signaling/src/lib.rs:
crates/telco-signaling/src/causes.rs:
crates/telco-signaling/src/duration.rs:
crates/telco-signaling/src/entities.rs:
crates/telco-signaling/src/events.rs:
crates/telco-signaling/src/failure.rs:
crates/telco-signaling/src/messages.rs:
crates/telco-signaling/src/state_machine.rs:
