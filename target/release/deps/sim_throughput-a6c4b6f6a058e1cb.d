/root/repo/target/release/deps/sim_throughput-a6c4b6f6a058e1cb.d: crates/telco-bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-a6c4b6f6a058e1cb: crates/telco-bench/benches/sim_throughput.rs

crates/telco-bench/benches/sim_throughput.rs:
