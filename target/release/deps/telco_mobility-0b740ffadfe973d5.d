/root/repo/target/release/deps/telco_mobility-0b740ffadfe973d5.d: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/release/deps/libtelco_mobility-0b740ffadfe973d5.rlib: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/release/deps/libtelco_mobility-0b740ffadfe973d5.rmeta: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

crates/telco-mobility/src/lib.rs:
crates/telco-mobility/src/assign.rs:
crates/telco-mobility/src/metrics.rs:
crates/telco-mobility/src/profile.rs:
crates/telco-mobility/src/schedule.rs:
crates/telco-mobility/src/trajectory.rs:
