/root/repo/target/release/deps/telco_sim-29091f4bc0971081.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/release/deps/telco_sim-29091f4bc0971081: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
