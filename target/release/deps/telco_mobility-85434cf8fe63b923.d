/root/repo/target/release/deps/telco_mobility-85434cf8fe63b923.d: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

/root/repo/target/release/deps/telco_mobility-85434cf8fe63b923: crates/telco-mobility/src/lib.rs crates/telco-mobility/src/assign.rs crates/telco-mobility/src/metrics.rs crates/telco-mobility/src/profile.rs crates/telco-mobility/src/schedule.rs crates/telco-mobility/src/trajectory.rs

crates/telco-mobility/src/lib.rs:
crates/telco-mobility/src/assign.rs:
crates/telco-mobility/src/metrics.rs:
crates/telco-mobility/src/profile.rs:
crates/telco-mobility/src/schedule.rs:
crates/telco-mobility/src/trajectory.rs:
