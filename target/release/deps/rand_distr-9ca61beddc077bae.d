/root/repo/target/release/deps/rand_distr-9ca61beddc077bae.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-9ca61beddc077bae.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-9ca61beddc077bae.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
