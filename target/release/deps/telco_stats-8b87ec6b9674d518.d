/root/repo/target/release/deps/telco_stats-8b87ec6b9674d518.d: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs

/root/repo/target/release/deps/telco_stats-8b87ec6b9674d518: crates/telco-stats/src/lib.rs crates/telco-stats/src/anova.rs crates/telco-stats/src/boxplot.rs crates/telco-stats/src/corr.rs crates/telco-stats/src/desc.rs crates/telco-stats/src/ecdf.rs crates/telco-stats/src/forest.rs crates/telco-stats/src/hist.rs crates/telco-stats/src/kruskal.rs crates/telco-stats/src/linalg.rs crates/telco-stats/src/quantile_reg.rs crates/telco-stats/src/regression.rs crates/telco-stats/src/special.rs

crates/telco-stats/src/lib.rs:
crates/telco-stats/src/anova.rs:
crates/telco-stats/src/boxplot.rs:
crates/telco-stats/src/corr.rs:
crates/telco-stats/src/desc.rs:
crates/telco-stats/src/ecdf.rs:
crates/telco-stats/src/forest.rs:
crates/telco-stats/src/hist.rs:
crates/telco-stats/src/kruskal.rs:
crates/telco-stats/src/linalg.rs:
crates/telco-stats/src/quantile_reg.rs:
crates/telco-stats/src/regression.rs:
crates/telco-stats/src/special.rs:
