/root/repo/target/release/deps/telco_trace-fe81c54ca2f2f0c4.d: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/release/deps/libtelco_trace-fe81c54ca2f2f0c4.rlib: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

/root/repo/target/release/deps/libtelco_trace-fe81c54ca2f2f0c4.rmeta: crates/telco-trace/src/lib.rs crates/telco-trace/src/anonymize.rs crates/telco-trace/src/dataset.rs crates/telco-trace/src/io.rs crates/telco-trace/src/record.rs

crates/telco-trace/src/lib.rs:
crates/telco-trace/src/anonymize.rs:
crates/telco-trace/src/dataset.rs:
crates/telco-trace/src/io.rs:
crates/telco-trace/src/record.rs:
