/root/repo/target/release/deps/telco_bench-319ab60433baca9a.d: crates/telco-bench/src/lib.rs

/root/repo/target/release/deps/libtelco_bench-319ab60433baca9a.rlib: crates/telco-bench/src/lib.rs

/root/repo/target/release/deps/libtelco_bench-319ab60433baca9a.rmeta: crates/telco-bench/src/lib.rs

crates/telco-bench/src/lib.rs:
