/root/repo/target/release/deps/telco_geo-3981207643bbcb49.d: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

/root/repo/target/release/deps/telco_geo-3981207643bbcb49: crates/telco-geo/src/lib.rs crates/telco-geo/src/census.rs crates/telco-geo/src/coords.rs crates/telco-geo/src/country.rs crates/telco-geo/src/district.rs crates/telco-geo/src/grid.rs crates/telco-geo/src/postcode.rs

crates/telco-geo/src/lib.rs:
crates/telco-geo/src/census.rs:
crates/telco-geo/src/coords.rs:
crates/telco-geo/src/country.rs:
crates/telco-geo/src/district.rs:
crates/telco-geo/src/grid.rs:
crates/telco-geo/src/postcode.rs:
