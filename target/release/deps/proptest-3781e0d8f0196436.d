/root/repo/target/release/deps/proptest-3781e0d8f0196436.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3781e0d8f0196436.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3781e0d8f0196436.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
