/root/repo/target/release/deps/telco_sim-bc28ff16b667b2a2.d: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/release/deps/libtelco_sim-bc28ff16b667b2a2.rlib: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

/root/repo/target/release/deps/libtelco_sim-bc28ff16b667b2a2.rmeta: crates/telco-sim/src/lib.rs crates/telco-sim/src/config.rs crates/telco-sim/src/engine.rs crates/telco-sim/src/load.rs crates/telco-sim/src/output.rs crates/telco-sim/src/runner.rs crates/telco-sim/src/world.rs

crates/telco-sim/src/lib.rs:
crates/telco-sim/src/config.rs:
crates/telco-sim/src/engine.rs:
crates/telco-sim/src/load.rs:
crates/telco-sim/src/output.rs:
crates/telco-sim/src/runner.rs:
crates/telco-sim/src/world.rs:
