/root/repo/target/release/examples/_ws_probe-b8e1afe6dd5f2b07.d: examples/_ws_probe.rs

/root/repo/target/release/examples/_ws_probe-b8e1afe6dd5f2b07: examples/_ws_probe.rs

examples/_ws_probe.rs:
