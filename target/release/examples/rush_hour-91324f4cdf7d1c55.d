/root/repo/target/release/examples/rush_hour-91324f4cdf7d1c55.d: examples/rush_hour.rs

/root/repo/target/release/examples/rush_hour-91324f4cdf7d1c55: examples/rush_hour.rs

examples/rush_hour.rs:
