/root/repo/target/release/examples/legacy_sunset-b86c64ced05a0c27.d: examples/legacy_sunset.rs

/root/repo/target/release/examples/legacy_sunset-b86c64ced05a0c27: examples/legacy_sunset.rs

examples/legacy_sunset.rs:
