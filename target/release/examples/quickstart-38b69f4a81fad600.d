/root/repo/target/release/examples/quickstart-38b69f4a81fad600.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-38b69f4a81fad600: examples/quickstart.rs

examples/quickstart.rs:
