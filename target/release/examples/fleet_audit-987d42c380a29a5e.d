/root/repo/target/release/examples/fleet_audit-987d42c380a29a5e.d: examples/fleet_audit.rs

/root/repo/target/release/examples/fleet_audit-987d42c380a29a5e: examples/fleet_audit.rs

examples/fleet_audit.rs:
