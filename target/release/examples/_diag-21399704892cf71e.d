/root/repo/target/release/examples/_diag-21399704892cf71e.d: examples/_diag.rs

/root/repo/target/release/examples/_diag-21399704892cf71e: examples/_diag.rs

examples/_diag.rs:
